"""Commutation analysis between gates (paper Sec. 3.3, Table 2).

The frontend resolves commutation "by explicitly checking the equality of
unitary operators AB and BA".  We do exactly that for pairs whose joint
support is small, with a signature-keyed cache so each structural pair is
checked once per session.  For wide operands (aggregated instructions whose
joint support exceeds :attr:`exact_qubits`) the checker falls back to the
conservative sound rules: disjoint supports always commute, and diagonal
operators always commute with each other.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.embed import embed_operator


def _matrix_of(operand) -> np.ndarray | None:
    """The operand's unitary, or None when it is unavailable/too wide."""
    matrix = getattr(operand, "matrix", None)
    if matrix is None:
        return None
    return np.asarray(matrix)


# Process-global verdict memo.  Every compile job builds fresh checker
# instances, but the structural question — do these two unitaries, laid
# out this way, commute? — is job-independent, so verdicts are shared
# across checkers keyed by (structural key, atol).  Bounded so a long
# sweep over many distinct parametrised gates cannot grow it without
# limit; eviction is FIFO (insertion order), which is fine for a memo.
_SHARED_VERDICT_LIMIT = 65536
_SHARED_VERDICTS: dict[tuple, bool] = {}


def _shared_store(key: tuple, verdict: bool) -> None:
    if len(_SHARED_VERDICTS) >= _SHARED_VERDICT_LIMIT:
        _SHARED_VERDICTS.pop(next(iter(_SHARED_VERDICTS)))
    _SHARED_VERDICTS[key] = verdict


def clear_shared_verdicts() -> None:
    """Drop the process-global memo (test isolation hook)."""
    _SHARED_VERDICTS.clear()


class CommutationChecker:
    """Decides whether two operations commute.

    Operands must expose ``qubits`` (tuple of register positions),
    ``is_diagonal`` (bool) and ``signature`` (hashable value identity);
    ``matrix`` is optional.  :class:`~repro.gates.gate.Gate` and
    :class:`~repro.aggregation.instruction.AggregatedInstruction` both
    qualify.
    """

    def __init__(self, exact_qubits: int = 4, atol: float = 1e-8) -> None:
        self.exact_qubits = exact_qubits
        self.atol = atol
        self._cache: dict[tuple, bool] = {}
        # Identity-pair memo: schedulers re-query the same live node pairs
        # thousands of times.  Nodes are stored in the values to keep them
        # alive, so CPython cannot recycle their ids.
        self._pair_memo: dict[tuple[int, int], tuple] = {}
        self.exact_checks = 0
        self.cache_hits = 0
        self.shared_hits = 0

    def commute(self, a, b) -> bool:
        """True when the two operations can be reordered."""
        pair_key = (id(a), id(b)) if id(a) < id(b) else (id(b), id(a))
        memo = self._pair_memo.get(pair_key)
        if memo is not None:
            self.cache_hits += 1
            return memo[2]
        verdict = self._commute_uncached(a, b)
        self._pair_memo[pair_key] = (a, b, verdict)
        return verdict

    def _commute_uncached(self, a, b) -> bool:
        shared = set(a.qubits) & set(b.qubits)
        if not shared:
            return True
        if a.is_diagonal and b.is_diagonal:
            return True
        union = sorted(set(a.qubits) | set(b.qubits))
        if len(union) > self.exact_qubits:
            # Too wide for an explicit check; be conservative.
            return False
        matrix_a = _matrix_of(a)
        matrix_b = _matrix_of(b)
        if matrix_a is None or matrix_b is None:
            return False
        key = self._cache_key(a, b, union)
        if key in self._cache:
            self.cache_hits += 1
            return self._cache[key]
        shared_key = (key, self.atol)
        shared = _SHARED_VERDICTS.get(shared_key)
        if shared is not None:
            self.shared_hits += 1
            verdict = shared
        else:
            verdict = self._exact_check(
                matrix_a, a.qubits, matrix_b, b.qubits, union
            )
        self._cache[key] = verdict
        # The relation is symmetric; prime the mirrored key too.
        mirror = self._cache_key(b, a, union)
        self._cache[mirror] = verdict
        if shared is None:
            _shared_store(shared_key, verdict)
            _shared_store((mirror, self.atol), verdict)
        return verdict

    def _exact_check(self, matrix_a, qubits_a, matrix_b, qubits_b, union) -> bool:
        self.exact_checks += 1
        index = {qubit: position for position, qubit in enumerate(union)}
        width = len(union)
        full_a = embed_operator(
            matrix_a, [index[q] for q in qubits_a], width
        )
        full_b = embed_operator(
            matrix_b, [index[q] for q in qubits_b], width
        )
        return bool(
            np.allclose(full_a @ full_b, full_b @ full_a, atol=self.atol)
        )

    def _cache_key(self, a, b, union) -> tuple:
        # The verdict only depends on each operand's unitary and on how
        # the two qubit tuples interleave within the union, so the key is
        # built from signatures plus union-relative positions.
        index = {qubit: position for position, qubit in enumerate(union)}
        positions_a = tuple(index[q] for q in a.qubits)
        positions_b = tuple(index[q] for q in b.qubits)
        return (a.signature, positions_a, b.signature, positions_b)

    def cache_size(self) -> int:
        """Number of cached structural verdicts."""
        return len(self._cache)
