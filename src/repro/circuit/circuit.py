"""The :class:`Circuit`: an ordered gate list on a fixed-width register.

This is the flattened logical assembly the compiler frontend produces
(after loop unrolling and module flattening); the gate-dependence graph is
derived from it.  Builder methods are chainable::

    circuit = Circuit(3).h(0).cnot(0, 1).rz(0.5, 1).cnot(0, 1)
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import CircuitError
from repro.gates import library
from repro.gates.gate import Gate
from repro.linalg.embed import embed_operator

_UNITARY_QUBIT_LIMIT = 12


class Circuit:
    """An ordered sequence of gates on ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits < 1:
            raise CircuitError("a circuit needs at least one qubit")
        self.num_qubits = int(num_qubits)
        self.name = name
        self.gates: list[Gate] = []

    # ------------------------------------------------------------------
    # Construction

    def append(self, gate: Gate) -> Circuit:
        """Append a gate, validating qubit indices."""
        if any(q >= self.num_qubits for q in gate.qubits):
            raise CircuitError(
                f"{gate} exceeds register width {self.num_qubits}"
            )
        self.gates.append(gate)
        return self

    def extend(self, gates: Iterable[Gate]) -> Circuit:
        """Append every gate from an iterable."""
        for gate in gates:
            self.append(gate)
        return self

    @classmethod
    def from_gates(
        cls, num_qubits: int, gates: Iterable[Gate], name: str = "circuit"
    ) -> Circuit:
        """Build a circuit from an existing gate sequence."""
        circuit = cls(num_qubits, name=name)
        circuit.extend(gates)
        return circuit

    def copy(self) -> Circuit:
        """Shallow copy (gates are immutable and shared)."""
        clone = Circuit(self.num_qubits, name=self.name)
        clone.gates = list(self.gates)
        return clone

    # Chainable builder shorthands -------------------------------------

    def h(self, qubit: int) -> Circuit:
        return self.append(library.H(qubit))

    def x(self, qubit: int) -> Circuit:
        return self.append(library.X(qubit))

    def y(self, qubit: int) -> Circuit:
        return self.append(library.Y(qubit))

    def z(self, qubit: int) -> Circuit:
        return self.append(library.Z(qubit))

    def s(self, qubit: int) -> Circuit:
        return self.append(library.S(qubit))

    def t(self, qubit: int) -> Circuit:
        return self.append(library.T(qubit))

    def rx(self, theta: float, qubit: int) -> Circuit:
        return self.append(library.RX(theta, qubit))

    def ry(self, theta: float, qubit: int) -> Circuit:
        return self.append(library.RY(theta, qubit))

    def rz(self, theta: float, qubit: int) -> Circuit:
        return self.append(library.RZ(theta, qubit))

    def cnot(self, control: int, target: int) -> Circuit:
        return self.append(library.CNOT(control, target))

    def cz(self, control: int, target: int) -> Circuit:
        return self.append(library.CZ(control, target))

    def cphase(self, theta: float, control: int, target: int) -> Circuit:
        return self.append(library.CPHASE(theta, control, target))

    def swap(self, qubit_a: int, qubit_b: int) -> Circuit:
        return self.append(library.SWAP(qubit_a, qubit_b))

    def rzz(self, theta: float, qubit_a: int, qubit_b: int) -> Circuit:
        return self.append(library.RZZ(theta, qubit_a, qubit_b))

    def toffoli(self, control_a: int, control_b: int, target: int) -> Circuit:
        return self.append(library.TOFFOLI(control_a, control_b, target))

    # ------------------------------------------------------------------
    # Inspection

    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}, qubits={self.num_qubits}, "
            f"gates={len(self.gates)})"
        )

    def gate_counts(self) -> Counter[str]:
        """Histogram of gate names."""
        return Counter(gate.name for gate in self.gates)

    def qubit_gates(self, qubit: int) -> list[Gate]:
        """Gates acting on ``qubit``, in program order."""
        if not 0 <= qubit < self.num_qubits:
            raise CircuitError(f"qubit {qubit} out of range")
        return [gate for gate in self.gates if qubit in gate.qubits]

    def used_qubits(self) -> set[int]:
        """Qubits touched by at least one gate."""
        used: set[int] = set()
        for gate in self.gates:
            used.update(gate.qubits)
        return used

    @property
    def depth(self) -> int:
        """Unit-latency circuit depth (per-qubit program order, no
        commutation analysis)."""
        level = [0] * self.num_qubits
        for gate in self.gates:
            start = max(level[q] for q in gate.qubits)
            for q in gate.qubits:
                level[q] = start + 1
        return max(level, default=0)

    def two_qubit_interaction_pairs(self) -> Counter[tuple[int, int]]:
        """Histogram of (sorted) qubit pairs touched by multi-qubit gates.

        Used by the mapping stage to build the qubit-interaction graph.
        """
        pairs: Counter[tuple[int, int]] = Counter()
        for gate in self.gates:
            if gate.num_qubits >= 2:
                qubits = sorted(gate.qubits)
                for i, a in enumerate(qubits):
                    for b in qubits[i + 1:]:
                        pairs[(a, b)] += 1
        return pairs

    # ------------------------------------------------------------------
    # Serialization (wire format: repro.ir.serialize)

    def to_dict(self) -> dict:
        """Versioned wire form (named gates by mnemonic, custom gates
        with explicit matrices)."""
        from repro.ir.serialize import circuit_to_dict

        return circuit_to_dict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> Circuit:
        """Rebuild a circuit from its wire form."""
        from repro.ir.serialize import circuit_from_dict

        return circuit_from_dict(payload)

    def to_json(self, indent: int | None = None) -> str:
        """JSON text of :meth:`to_dict` (exact float round trip)."""
        import json

        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> Circuit:
        """Rebuild a circuit from :meth:`to_json` output."""
        import json

        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Semantics

    def unitary(self) -> np.ndarray:
        """Full-register unitary (only for small circuits)."""
        if self.num_qubits > _UNITARY_QUBIT_LIMIT:
            raise CircuitError(
                f"unitary() limited to {_UNITARY_QUBIT_LIMIT} qubits; "
                f"circuit has {self.num_qubits}"
            )
        total = np.eye(2**self.num_qubits, dtype=complex)
        for gate in self.gates:
            total = embed_operator(gate.matrix, gate.qubits, self.num_qubits) @ total
        return total

    def statevector(self, initial: Sequence[complex] | None = None) -> np.ndarray:
        """Final state after applying the circuit to ``initial`` (or |0..0>)."""
        from repro.linalg.simulator import StatevectorSimulator

        simulator = StatevectorSimulator(self.num_qubits)
        if initial is not None:
            initial = np.asarray(initial, dtype=complex)
            if initial.shape != (2**self.num_qubits,):
                raise CircuitError("initial state has wrong dimension")
            simulator.state = initial / np.linalg.norm(initial)
        simulator.run_circuit(self)
        return simulator.state
