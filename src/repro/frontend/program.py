"""Program-level IR: modules, calls and classical loops.

This is the high-level language the compiler frontend accepts (the paper
uses ScaffCC; this IR covers the constructs its frontend passes need:
module flattening and loop unrolling).  Example::

    program = Program("ring", num_qubits=4)
    layer = program.module("layer", qubits=["a", "b"], angles=["g"])
    layer.gate("cnot", ["a", "b"])
    layer.gate("rz", ["b"], ["2*g"])
    layer.gate("cnot", ["a", "b"])
    loop = program.for_range("i", 0, 3)
    loop.call("layer", ["i", "i+1"], [0.7])

Qubit and angle arguments are integers/floats or strings holding simple
arithmetic expressions over loop variables and module parameters
(``+ - * //`` and parentheses).
"""

from __future__ import annotations

import ast
import dataclasses
from collections.abc import Sequence

from repro.errors import ProgramError

Expr = int | float | str


@dataclasses.dataclass
class GateStatement:
    """A primitive gate application."""

    name: str
    qubits: tuple[Expr, ...]
    params: tuple[Expr, ...] = ()


@dataclasses.dataclass
class CallStatement:
    """A call to a named module."""

    module: str
    qubits: tuple[Expr, ...]
    params: tuple[Expr, ...] = ()


@dataclasses.dataclass
class ForStatement:
    """A classical counted loop; ``var`` ranges over [start, stop)."""

    var: str
    start: Expr
    stop: Expr
    body: Block


class Block:
    """A sequence of statements with builder helpers."""

    def __init__(self) -> None:
        self.statements: list = []

    def gate(self, name: str, qubits: Sequence[Expr], params: Sequence[Expr] = ()) -> Block:
        """Append a gate statement; returns self for chaining."""
        self.statements.append(
            GateStatement(name, tuple(qubits), tuple(params))
        )
        return self

    def call(
        self, module: str, qubits: Sequence[Expr], params: Sequence[Expr] = ()
    ) -> Block:
        """Append a module call; returns self for chaining."""
        self.statements.append(
            CallStatement(module, tuple(qubits), tuple(params))
        )
        return self

    def for_range(self, var: str, start: Expr, stop: Expr) -> Block:
        """Append a counted loop and return its (empty) body block."""
        if not var.isidentifier():
            raise ProgramError(f"loop variable {var!r} is not an identifier")
        body = Block()
        self.statements.append(ForStatement(var, start, stop, body))
        return body

    def statement_count(self) -> int:
        """Total statements including nested loop bodies."""
        count = 0
        for statement in self.statements:
            count += 1
            if isinstance(statement, ForStatement):
                count += statement.body.statement_count()
        return count


class Module(Block):
    """A named, parameterized subroutine."""

    def __init__(
        self,
        name: str,
        qubits: Sequence[str] = (),
        angles: Sequence[str] = (),
    ) -> None:
        super().__init__()
        self.name = name
        self.qubit_params = tuple(qubits)
        self.angle_params = tuple(angles)
        for param in (*self.qubit_params, *self.angle_params):
            if not param.isidentifier():
                raise ProgramError(f"parameter {param!r} is not an identifier")
        if len(set(self.qubit_params) | set(self.angle_params)) != len(
            self.qubit_params
        ) + len(self.angle_params):
            raise ProgramError(f"module {name!r} has duplicate parameter names")


class Program(Block):
    """Top-level program: a main block plus named modules."""

    def __init__(self, name: str, num_qubits: int) -> None:
        super().__init__()
        if num_qubits < 1:
            raise ProgramError("a program needs at least one qubit")
        self.name = name
        self.num_qubits = int(num_qubits)
        self.modules: dict[str, Module] = {}

    def module(
        self,
        name: str,
        qubits: Sequence[str] = (),
        angles: Sequence[str] = (),
    ) -> Module:
        """Define (and return) a new module."""
        if name in self.modules:
            raise ProgramError(f"module {name!r} already defined")
        module = Module(name, qubits, angles)
        self.modules[name] = module
        return module


_ALLOWED_BINOPS = (ast.Add, ast.Sub, ast.Mult, ast.FloorDiv, ast.Div, ast.Mod)


def evaluate_expression(expression: Expr, env: dict[str, float]) -> float:
    """Evaluate an integer/float literal or a restricted arithmetic string.

    Only ``+ - * / // %``, unary minus, parentheses, numeric literals and
    names bound in ``env`` are allowed.
    """
    if isinstance(expression, (int, float)):
        return expression
    try:
        tree = ast.parse(str(expression), mode="eval")
    except SyntaxError as error:
        raise ProgramError(f"cannot parse expression {expression!r}") from error
    return _evaluate_node(tree.body, env, expression)


def _evaluate_node(node: ast.AST, env: dict[str, float], source: Expr) -> float:
    if isinstance(node, ast.Constant):
        if isinstance(node.value, (int, float)):
            return node.value
        raise ProgramError(f"non-numeric literal in {source!r}")
    if isinstance(node, ast.Name):
        if node.id not in env:
            raise ProgramError(f"unbound variable {node.id!r} in {source!r}")
        return env[node.id]
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        value = _evaluate_node(node.operand, env, source)
        return -value if isinstance(node.op, ast.USub) else value
    if isinstance(node, ast.BinOp) and isinstance(node.op, _ALLOWED_BINOPS):
        left = _evaluate_node(node.left, env, source)
        right = _evaluate_node(node.right, env, source)
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.Mult):
            return left * right
        if isinstance(node.op, ast.FloorDiv):
            return left // right
        if isinstance(node.op, ast.Mod):
            return left % right
        return left / right
    raise ProgramError(f"unsupported construct in expression {source!r}")


def evaluate_qubit(expression: Expr, env: dict[str, float]) -> int:
    """Evaluate an expression that must produce a qubit index."""
    value = evaluate_expression(expression, env)
    if abs(value - round(value)) > 1e-9:
        raise ProgramError(f"qubit expression {expression!r} is not an integer")
    return int(round(value))
