"""Frontend passes: loop unrolling and module flattening (paper Sec. 3.3).

``unroll_loops`` rewrites a program so no ``ForStatement`` remains;
``flatten_program`` additionally inlines every module call and produces the
flattened logical assembly as a :class:`~repro.circuit.circuit.Circuit`.
"""

from __future__ import annotations

from repro.circuit.circuit import Circuit
from repro.errors import ProgramError
from repro.frontend.program import (
    Block,
    CallStatement,
    ForStatement,
    GateStatement,
    Program,
    evaluate_expression,
    evaluate_qubit,
)
from repro.gates.library import gate_from_name

_MAX_UNROLLED_STATEMENTS = 2_000_000


def unroll_loops(program: Program) -> Program:
    """Expand every counted loop; module bodies are unrolled too.

    Loop bounds must be evaluable without module parameters (literals or
    expressions over enclosing loop variables).
    """
    unrolled = Program(program.name, program.num_qubits)
    _unroll_block(program, unrolled, {})
    for name, module in program.modules.items():
        clone = unrolled.module(name, module.qubit_params, module.angle_params)
        # Module-local loops may reference module parameters; those are
        # left to flattening, so only parameter-free loops unroll here.
        _unroll_block(module, clone, {}, allow_unbound=True)
    return unrolled


def _unroll_block(
    source: Block,
    destination: Block,
    env: dict[str, float],
    allow_unbound: bool = False,
) -> None:
    for statement in source.statements:
        if isinstance(statement, ForStatement):
            try:
                start = int(evaluate_expression(statement.start, env))
                stop = int(evaluate_expression(statement.stop, env))
            except ProgramError:
                if allow_unbound:
                    # Bounds depend on module parameters: keep the loop.
                    kept = destination.for_range(
                        statement.var, statement.start, statement.stop
                    )
                    _unroll_block(statement.body, kept, env, allow_unbound)
                    continue
                raise
            for value in range(start, stop):
                inner_env = dict(env)
                inner_env[statement.var] = value
                _unroll_block(statement.body, destination, inner_env, allow_unbound)
                if destination.statement_count() > _MAX_UNROLLED_STATEMENTS:
                    raise ProgramError("loop unrolling exceeded statement limit")
        elif isinstance(statement, GateStatement):
            destination.gate(
                statement.name,
                [_substitute(e, env) for e in statement.qubits],
                [_substitute(e, env) for e in statement.params],
            )
        elif isinstance(statement, CallStatement):
            destination.call(
                statement.module,
                [_substitute(e, env) for e in statement.qubits],
                [_substitute(e, env) for e in statement.params],
            )
        else:
            raise ProgramError(f"unknown statement {statement!r}")


def _substitute(expression, env: dict[str, float]):
    """Resolve an expression now if possible, else keep it symbolic."""
    if isinstance(expression, (int, float)):
        return expression
    try:
        return evaluate_expression(expression, env)
    except ProgramError:
        return expression


def flatten_program(program: Program, name: str | None = None) -> Circuit:
    """Inline all calls and loops, producing the flattened gate stream."""
    circuit = Circuit(program.num_qubits, name=name or program.name)
    _flatten_block(program, program, circuit, {}, call_stack=())
    return circuit


def _flatten_block(
    program: Program,
    block: Block,
    circuit: Circuit,
    env: dict[str, float],
    call_stack: tuple[str, ...],
) -> None:
    for statement in block.statements:
        if isinstance(statement, GateStatement):
            qubits = [evaluate_qubit(e, env) for e in statement.qubits]
            params = [evaluate_expression(e, env) for e in statement.params]
            try:
                circuit.append(gate_from_name(statement.name, qubits, params))
            except Exception as error:
                raise ProgramError(
                    f"bad gate statement {statement.name} {qubits}: {error}"
                ) from error
        elif isinstance(statement, ForStatement):
            start = int(evaluate_expression(statement.start, env))
            stop = int(evaluate_expression(statement.stop, env))
            for value in range(start, stop):
                inner_env = dict(env)
                inner_env[statement.var] = value
                _flatten_block(program, statement.body, circuit, inner_env, call_stack)
        elif isinstance(statement, CallStatement):
            if statement.module in call_stack:
                raise ProgramError(
                    f"recursive module call: {' -> '.join(call_stack)} "
                    f"-> {statement.module}"
                )
            module = program.modules.get(statement.module)
            if module is None:
                raise ProgramError(f"unknown module {statement.module!r}")
            if len(statement.qubits) != len(module.qubit_params) or len(
                statement.params
            ) != len(module.angle_params):
                raise ProgramError(
                    f"call to {module.name!r} has wrong arity"
                )
            module_env = {
                formal: evaluate_qubit(actual, env)
                for formal, actual in zip(module.qubit_params, statement.qubits)
            }
            module_env.update(
                {
                    formal: evaluate_expression(actual, env)
                    for formal, actual in zip(module.angle_params, statement.params)
                }
            )
            _flatten_block(
                program,
                module,
                circuit,
                module_env,
                call_stack + (statement.module,),
            )
        else:
            raise ProgramError(f"unknown statement {statement!r}")
