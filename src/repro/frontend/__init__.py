"""Compiler frontend: program IR, loop unrolling, module flattening."""

from repro.frontend.program import Block, Module, Program
from repro.frontend.passes import flatten_program, unroll_loops

__all__ = ["Block", "Module", "Program", "flatten_program", "unroll_loops"]
