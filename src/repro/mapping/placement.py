"""Initial qubit placement by recursive interaction-graph bisection.

Following the paper (Sec. 3.4.1), the qubit-interaction graph is bisected
recursively along small cuts; each bisection also halves the device
region, so strongly-interacting logical qubits land in the same region
and CNOT distances shrink.

The device region is sliced along
:meth:`~repro.device.topology.Topology.placement_order` — an ordering
whose contiguous slices form compact connected regions.  On the paper's
grid that is the boustrophedon scan (bit-identical to the pre-device
pipeline); arbitrary coupling graphs use a BFS order seeded at the
highest-degree qubit.
"""

from __future__ import annotations

import networkx as nx

from repro.device.topology import Topology, grid_for
from repro.errors import MappingError
from repro.mapping.partition import balanced_min_cut_bisection


class Placement:
    """A bijection between logical qubits and physical grid cells."""

    def __init__(self, logical_to_physical: dict[int, int], topology) -> None:
        self.topology = topology
        self._logical_to_physical = dict(logical_to_physical)
        self._physical_to_logical = {
            phys: log for log, phys in self._logical_to_physical.items()
        }
        if len(self._physical_to_logical) != len(self._logical_to_physical):
            raise MappingError("placement is not injective")

    def physical(self, logical: int) -> int:
        """Physical cell currently hosting a logical qubit."""
        try:
            return self._logical_to_physical[logical]
        except KeyError:
            raise MappingError(f"logical qubit {logical} is not placed") from None

    def logical(self, physical: int) -> int | None:
        """Logical qubit currently at a physical cell (None when empty)."""
        return self._physical_to_logical.get(physical)

    def swap_physical(self, phys_a: int, phys_b: int) -> None:
        """Record a SWAP between two physical cells."""
        log_a = self._physical_to_logical.get(phys_a)
        log_b = self._physical_to_logical.get(phys_b)
        if log_a is not None:
            self._logical_to_physical[log_a] = phys_b
        if log_b is not None:
            self._logical_to_physical[log_b] = phys_a
        if log_a is not None:
            self._physical_to_logical[phys_b] = log_a
        elif phys_b in self._physical_to_logical:
            del self._physical_to_logical[phys_b]
        if log_b is not None:
            self._physical_to_logical[phys_a] = log_b
        elif phys_a in self._physical_to_logical:
            del self._physical_to_logical[phys_a]

    def copy(self) -> Placement:
        return Placement(dict(self._logical_to_physical), self.topology)

    def as_dict(self) -> dict[int, int]:
        """Logical -> physical mapping snapshot."""
        return dict(self._logical_to_physical)

    def average_distance(self, interaction_graph: nx.Graph) -> float:
        """Mean weighted physical distance of interacting pairs (a
        spatial-locality diagnostic)."""
        total_weight = 0.0
        total = 0.0
        for a, b, data in interaction_graph.edges(data=True):
            weight = data.get("weight", 1.0)
            total += weight * self.topology.distance(
                self.physical(a), self.physical(b)
            )
            total_weight += weight
        return total / total_weight if total_weight else 0.0


def interaction_graph_of(circuit) -> nx.Graph:
    """Weighted qubit-interaction graph of a circuit."""
    graph = nx.Graph()
    graph.add_nodes_from(range(circuit.num_qubits))
    for (a, b), count in circuit.two_qubit_interaction_pairs().items():
        graph.add_edge(a, b, weight=float(count))
    return graph


def initial_placement(
    circuit,
    topology: Topology | None = None,
) -> Placement:
    """Place a circuit's qubits on a device by recursive bisection.

    Works for any coupling graph: the device cells are consumed in the
    topology's :meth:`~repro.device.topology.Topology.placement_order`,
    so each bisection of the interaction graph lands in a compact
    connected region.  Defaults to the paper's near-square grid.
    """
    topology = topology or grid_for(circuit.num_qubits)
    if topology.num_qubits < circuit.num_qubits:
        raise MappingError(
            f"topology has {topology.num_qubits} cells for "
            f"{circuit.num_qubits} logical qubits"
        )
    graph = interaction_graph_of(circuit)
    logical = list(range(circuit.num_qubits))
    cells = topology.placement_order()
    assignment: dict[int, int] = {}
    _place_recursive(graph, logical, cells, topology, assignment)
    return Placement(assignment, topology)


def _place_recursive(
    graph: nx.Graph,
    vertices: list[int],
    cells: list[int],
    topology: Topology,
    assignment: dict[int, int],
) -> None:
    if not vertices:
        return
    if len(vertices) == 1:
        assignment[vertices[0]] = cells[0]
        return
    half_cells = len(cells) // 2
    cells_a, cells_b = cells[:half_cells], cells[half_cells:]
    size_a = min(len(vertices), half_cells)
    # Bias occupancy toward the first region but never exceed capacity.
    size_a = max(size_a, len(vertices) - len(cells_b))
    size_b = len(vertices) - size_a
    part_a, part_b = balanced_min_cut_bisection(graph, vertices, size_a, size_b)
    _place_recursive(graph, part_a, cells_a, topology, assignment)
    _place_recursive(graph, part_b, cells_b, topology, assignment)
