"""Qubit mapping: placement and SWAP routing over device topologies.

Topology types live in :mod:`repro.device`; they are re-exported here
for compatibility with pre-device-subsystem code.
"""

from repro.device.topology import (
    FullyConnectedTopology,
    GridTopology,
    HeavyHexTopology,
    LineTopology,
    RingTopology,
    Topology,
    grid_for,
)
from repro.mapping.partition import balanced_min_cut_bisection
from repro.mapping.placement import Placement, initial_placement
from repro.mapping.router import RoutingResult, route

__all__ = [
    "FullyConnectedTopology",
    "GridTopology",
    "HeavyHexTopology",
    "LineTopology",
    "Placement",
    "RingTopology",
    "RoutingResult",
    "Topology",
    "balanced_min_cut_bisection",
    "grid_for",
    "initial_placement",
    "route",
]
