"""Qubit mapping: device topologies, placement, and SWAP routing."""

from repro.mapping.topology import GridTopology, LineTopology, grid_for
from repro.mapping.partition import balanced_min_cut_bisection
from repro.mapping.placement import Placement, initial_placement
from repro.mapping.router import RoutingResult, route

__all__ = [
    "GridTopology",
    "LineTopology",
    "Placement",
    "RoutingResult",
    "balanced_min_cut_bisection",
    "grid_for",
    "initial_placement",
    "route",
]
