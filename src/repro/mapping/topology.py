"""Compatibility shim: topologies moved to :mod:`repro.device.topology`.

The device/target refactor lifted the coupling-graph types out of the
mapping layer (they describe hardware, not an algorithm) and generalized
them to arbitrary graphs.  Import from :mod:`repro.device` in new code;
this module keeps the original import path working.
"""

from repro.device.topology import (
    FullyConnectedTopology,
    GridTopology,
    HeavyHexTopology,
    LineTopology,
    RingTopology,
    Topology,
    grid_for,
)

__all__ = [
    "FullyConnectedTopology",
    "GridTopology",
    "HeavyHexTopology",
    "LineTopology",
    "RingTopology",
    "Topology",
    "grid_for",
]
