"""Device topologies: rectangular qubit grids (paper Sec. 3.4.1).

The paper assumes a rectangular-grid topology with two-qubit operations
only between direct neighbours, representative of near-term
superconducting devices.  Physical qubits are indexed row-major.
"""

from __future__ import annotations

import math
from collections import deque

from repro.errors import MappingError


class GridTopology:
    """A ``rows x cols`` nearest-neighbour grid."""

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise MappingError("grid dimensions must be positive")
        self.rows = int(rows)
        self.cols = int(cols)
        self._distance_cache: dict[int, list[int]] = {}

    @property
    def num_qubits(self) -> int:
        return self.rows * self.cols

    def coordinates(self, qubit: int) -> tuple[int, int]:
        """(row, col) of a physical qubit."""
        self._check(qubit)
        return divmod(qubit, self.cols)

    def index(self, row: int, col: int) -> int:
        """Physical index of a grid cell."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise MappingError(f"cell ({row}, {col}) outside the grid")
        return row * self.cols + col

    def neighbors(self, qubit: int) -> list[int]:
        """Directly coupled physical qubits."""
        row, col = self.coordinates(qubit)
        adjacent = []
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            r, c = row + dr, col + dc
            if 0 <= r < self.rows and 0 <= c < self.cols:
                adjacent.append(self.index(r, c))
        return adjacent

    def are_adjacent(self, qubit_a: int, qubit_b: int) -> bool:
        """True when a two-qubit operation is directly possible."""
        row_a, col_a = self.coordinates(qubit_a)
        row_b, col_b = self.coordinates(qubit_b)
        return abs(row_a - row_b) + abs(col_a - col_b) == 1

    def distance(self, qubit_a: int, qubit_b: int) -> int:
        """Manhattan distance between two physical qubits."""
        row_a, col_a = self.coordinates(qubit_a)
        row_b, col_b = self.coordinates(qubit_b)
        return abs(row_a - row_b) + abs(col_a - col_b)

    def shortest_path(self, source: int, target: int) -> list[int]:
        """A shortest path (inclusive of endpoints) via BFS.

        BFS keeps this correct for subclasses with holes; on the plain
        grid it returns one of the Manhattan staircase paths.
        """
        self._check(source)
        self._check(target)
        if source == target:
            return [source]
        parents: dict[int, int] = {source: source}
        queue = deque([source])
        while queue:
            current = queue.popleft()
            for neighbor in self.neighbors(current):
                if neighbor not in parents:
                    parents[neighbor] = current
                    if neighbor == target:
                        path = [target]
                        while path[-1] != source:
                            path.append(parents[path[-1]])
                        path.reverse()
                        return path
                    queue.append(neighbor)
        raise MappingError(f"no path from {source} to {target}")

    def all_qubits(self) -> list[int]:
        """All physical indices, row-major."""
        return list(range(self.num_qubits))

    def _check(self, qubit: int) -> None:
        if not 0 <= qubit < self.num_qubits:
            raise MappingError(f"physical qubit {qubit} outside the grid")

    def __repr__(self) -> str:
        return f"GridTopology({self.rows}x{self.cols})"


class LineTopology(GridTopology):
    """1-D nearest-neighbour chain (used in the paper's Fig. 4 example)."""

    def __init__(self, num_qubits: int) -> None:
        super().__init__(1, num_qubits)

    def __repr__(self) -> str:
        return f"LineTopology({self.cols})"


def grid_for(num_qubits: int) -> GridTopology:
    """Smallest near-square grid with at least ``num_qubits`` cells."""
    if num_qubits < 1:
        raise MappingError("need at least one qubit")
    rows = int(math.floor(math.sqrt(num_qubits)))
    while rows >= 1:
        cols = math.ceil(num_qubits / rows)
        if rows * cols >= num_qubits:
            return GridTopology(rows, cols)
        rows -= 1
    return GridTopology(1, num_qubits)
