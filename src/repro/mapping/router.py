"""SWAP-insertion routing (paper Sec. 3.4.1).

Two-qubit operations between non-neighbouring physical qubits are
prepended with SWAP rearrangements that walk the two operands toward each
other along a shortest coupling path; the placement is updated permanently
(SWAPs are real gates, not bookkeeping).  The router is topology-agnostic:
it only asks the placement's :class:`~repro.device.topology.Topology` for
adjacency and shortest paths, so grids, rings, heavy-hex lattices and
arbitrary coupling graphs all route through the same code.

The router processes nodes in a dependence-respecting order and emits a
new node sequence over *physical* qubits.  Any node exposing ``on()``
(gates and 2-qubit-wide diagonal instructions alike) can be routed.
"""

from __future__ import annotations

import dataclasses

from repro.errors import MappingError
from repro.gates import library
from repro.mapping.placement import Placement


@dataclasses.dataclass
class RoutingResult:
    """Outcome of routing a node sequence onto a topology."""

    nodes: list
    placement: Placement
    swap_count: int
    initial_placement: Placement


def route(nodes, placement: Placement, max_width: int = 2) -> RoutingResult:
    """Insert SWAPs so every multi-qubit node acts on adjacent qubits.

    Args:
        nodes: Dependence-ordered nodes on logical qubits.
        placement: Initial logical-to-physical placement (not mutated).
        max_width: Largest node width the router accepts.

    Returns:
        A :class:`RoutingResult` whose ``nodes`` act on physical qubits.
    """
    topology = placement.topology
    initial = placement.copy()
    current = placement.copy()
    routed: list = []
    swap_count = 0
    for node in nodes:
        if len(node.qubits) > max_width:
            raise MappingError(
                f"cannot route {len(node.qubits)}-qubit node {node}; "
                f"decompose it first"
            )
        if len(node.qubits) == 1:
            routed.append(node.on((current.physical(node.qubits[0]),)))
            continue
        logical_a, logical_b = node.qubits
        phys_a = current.physical(logical_a)
        phys_b = current.physical(logical_b)
        if not topology.are_adjacent(phys_a, phys_b):
            swaps = _swaps_toward(topology, current, phys_a, phys_b)
            routed.extend(swaps)
            swap_count += len(swaps)
            phys_a = current.physical(logical_a)
            phys_b = current.physical(logical_b)
        routed.append(node.on((phys_a, phys_b)))
    return RoutingResult(
        nodes=routed,
        placement=current,
        swap_count=swap_count,
        initial_placement=initial,
    )


def permutation_restore_gates(placement: Placement) -> list:
    """SWAP gates that move every logical qubit back to its home cell.

    Routing leaves logical qubits scattered over the grid; appending these
    SWAPs restores the identity mapping (``logical q`` at ``physical q``),
    which is what a semantics check — or a caller who wants to compose
    routed circuits — needs.  Selection sort with SWAPs: at most ``n - 1``
    gates, each between the current and the target cell of one qubit.
    """
    position_of = placement.as_dict()
    occupant: dict[int, int] = {
        physical: logical for logical, physical in position_of.items()
    }
    gates = []
    for logical in sorted(position_of):
        source = position_of[logical]
        target = logical
        if source == target:
            continue
        gates.append(library.SWAP(source, target))
        other = occupant.get(target)
        occupant[source] = other
        if other is not None:
            position_of[other] = source
        occupant[target] = logical
        position_of[logical] = target
    return gates


def _swaps_toward(topology, placement: Placement, phys_a: int, phys_b: int):
    """SWAP gates that walk both endpoints together along a shortest path.

    The two operands advance alternately from each end toward the middle,
    which splits the rearrangement across both sides of the path (fewer
    serialized SWAPs on either qubit's timeline than one-sided walking).
    """
    path = topology.shortest_path(phys_a, phys_b)
    swaps = []
    left = 0
    right = len(path) - 1
    # Stop when the two tracked qubits are adjacent on the path.
    while right - left > 1:
        # Advance the left operand one step.
        swaps.append(library.SWAP(path[left], path[left + 1]))
        placement.swap_physical(path[left], path[left + 1])
        left += 1
        if right - left <= 1:
            break
        swaps.append(library.SWAP(path[right], path[right - 1]))
        placement.swap_physical(path[right], path[right - 1])
        right -= 1
    return swaps
