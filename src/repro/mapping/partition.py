"""Balanced min-cut graph bisection (METIS substitute).

The paper places frequently-interacting qubits near each other by
recursively bisecting the qubit-interaction graph along small cuts using
METIS.  METIS is not available offline, so this module implements the same
heuristic family: a weighted Kernighan–Lin refinement over a BFS-seeded
initial split, supporting the unequal part sizes that recursive grid
subdivision produces.
"""

from __future__ import annotations

from collections import defaultdict, deque
from collections.abc import Hashable, Sequence

import networkx as nx

from repro.errors import MappingError

_MAX_PASSES = 8


def balanced_min_cut_bisection(
    graph: nx.Graph,
    vertices: Sequence[Hashable],
    size_a: int,
    size_b: int,
) -> tuple[list, list]:
    """Split ``vertices`` into parts of exactly ``size_a``/``size_b``
    minimizing the total weight of edges crossing the cut.

    Args:
        graph: Weighted interaction graph (edge attribute ``weight``,
            default 1.0); vertices outside ``vertices`` are ignored.
        vertices: The vertex set to split (order defines determinism).
        size_a: Exact size of the first part.
        size_b: Exact size of the second part.

    Returns:
        ``(part_a, part_b)`` vertex lists.
    """
    vertices = list(vertices)
    if size_a + size_b != len(vertices):
        raise MappingError(
            f"part sizes {size_a}+{size_b} do not cover {len(vertices)} vertices"
        )
    if size_a == 0 or size_b == 0:
        return (vertices[:size_a], vertices[size_a:])

    part_a = set(_bfs_seed(graph, vertices, size_a))
    part_b = [v for v in vertices if v not in part_a]
    part_a = [v for v in vertices if v in part_a]

    weights = _weight_lookup(graph, set(vertices))
    part_of = {v: 0 for v in part_a}
    part_of.update({v: 1 for v in part_b})

    for _ in range(_MAX_PASSES):
        improved = _refinement_pass(vertices, weights, part_of)
        if not improved:
            break
    final_a = [v for v in vertices if part_of[v] == 0]
    final_b = [v for v in vertices if part_of[v] == 1]
    return final_a, final_b


def cut_weight(graph: nx.Graph, part_a: Sequence, part_b: Sequence) -> float:
    """Total weight of edges between the two parts."""
    in_a = set(part_a)
    total = 0.0
    for v in part_b:
        if v not in graph:
            continue
        for neighbor, data in graph[v].items():
            if neighbor in in_a:
                total += data.get("weight", 1.0)
    return total


def _bfs_seed(graph: nx.Graph, vertices: list, size_a: int) -> list:
    """Grow the first part by BFS from the heaviest vertex, keeping
    clustered vertices together."""
    vertex_set = set(vertices)

    def vertex_weight(v) -> float:
        if v not in graph:
            return 0.0
        return sum(
            data.get("weight", 1.0)
            for neighbor, data in graph[v].items()
            if neighbor in vertex_set
        )

    order = sorted(vertices, key=vertex_weight, reverse=True)
    seed: list = []
    seen: set = set()
    queue: deque = deque()
    pending = deque(order)
    while len(seed) < size_a:
        if not queue:
            while pending and pending[0] in seen:
                pending.popleft()
            if not pending:
                break
            queue.append(pending.popleft())
            seen.add(queue[0])
        current = queue.popleft()
        seed.append(current)
        if current in graph:
            for neighbor in sorted(
                (n for n in graph[current] if n in vertex_set and n not in seen),
                key=vertex_weight,
                reverse=True,
            ):
                seen.add(neighbor)
                queue.append(neighbor)
    return seed[:size_a]


def _weight_lookup(graph: nx.Graph, vertex_set: set) -> dict:
    weights: dict = defaultdict(dict)
    for a, b, data in graph.edges(data=True):
        if a in vertex_set and b in vertex_set:
            w = data.get("weight", 1.0)
            weights[a][b] = w
            weights[b][a] = w
    return weights


def _refinement_pass(vertices: list, weights: dict, part_of: dict) -> bool:
    """One KL-style pass: greedily perform the best swap while positive."""
    improved = False
    for _ in range(len(vertices)):
        best_gain = 1e-12
        best_pair = None
        gains = {
            v: _move_gain(v, weights, part_of) for v in vertices
        }
        side_a = [v for v in vertices if part_of[v] == 0]
        side_b = [v for v in vertices if part_of[v] == 1]
        for a in side_a:
            for b in side_b:
                pair_weight = weights.get(a, {}).get(b, 0.0)
                gain = gains[a] + gains[b] - 2.0 * pair_weight
                if gain > best_gain:
                    best_gain = gain
                    best_pair = (a, b)
        if best_pair is None:
            break
        a, b = best_pair
        part_of[a], part_of[b] = part_of[b], part_of[a]
        improved = True
    return improved


def _move_gain(vertex, weights: dict, part_of: dict) -> float:
    """Cut reduction if ``vertex`` alone switched sides."""
    external = 0.0
    internal = 0.0
    for neighbor, weight in weights.get(vertex, {}).items():
        if part_of[neighbor] == part_of[vertex]:
            internal += weight
        else:
            external += weight
    return external - internal
