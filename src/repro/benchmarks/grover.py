"""Grover square-root search (paper benchmarks square root n3/n4/n5).

The circuit searches for ``x`` with ``x^2 == target`` using Grover's
algorithm over an ``m``-bit operand: the oracle squares the operand into
an accumulator with reversible arithmetic, phase-flips the match, and
uncomputes; the diffusion operator reflects about the mean.

Register budget (matching the paper's qubit counts for m = 3, 4, 5):

* operand: ``m`` qubits
* accumulator: ``2m`` qubits
* ancilla pool: ``2 (m-1)^2`` qubits (carries, partial products,
  Toffoli ladders — peak concurrent use is ``2m - 1``, which fits for
  ``m >= 3``; smaller instances get a bumped pool)

Total ``2 m^2 - m + 2``: 17, 30, 47 qubits for m = 3, 4, 5 — the paper's
square-root benchmark sizes.
"""

from __future__ import annotations

import math

from repro.benchmarks.arithmetic import (
    AncillaPool,
    flip_zero_bits,
    multi_controlled_z,
    squarer,
    unsquarer,
)
from repro.circuit.circuit import Circuit
from repro.errors import BenchmarkError


def sqrt_benchmark_qubits(operand_bits: int) -> int:
    """Total qubits of the square-root benchmark (2m^2 - m + 2 for m>=3)."""
    return (
        operand_bits
        + 2 * operand_bits
        + _ancilla_count(operand_bits)
    )


def _ancilla_count(operand_bits: int) -> int:
    nominal = 2 * (operand_bits - 1) ** 2
    peak_use = 2 * operand_bits - 1
    return max(nominal, peak_use)


def grover_sqrt_circuit(
    operand_bits: int,
    target_value: int | None = None,
    iterations: int | None = None,
    name: str | None = None,
) -> Circuit:
    """Build the Grover square-root circuit.

    Args:
        operand_bits: ``m``; the search space is ``2^m`` candidates.
        target_value: The square to invert; defaults to the square of
            ``2^(m-1)`` so exactly one solution exists.
        iterations: Grover iterations; defaults to 1 (the latency study
            compares per-iteration cost — full amplification would scale
            every strategy identically).  Pass
            ``round(pi/4 * sqrt(2^m))`` for a functional search.

    Returns:
        The circuit over ``sqrt_benchmark_qubits(m)`` qubits; operand is
        qubits ``0..m-1`` (little-endian), accumulator ``m..3m-1``.
    """
    if operand_bits < 2:
        raise BenchmarkError("the squarer needs at least two operand bits")
    m = operand_bits
    if target_value is None:
        root = 2 ** (m - 1)
        target_value = root * root
    if target_value < 0 or target_value >= 4**m:
        raise BenchmarkError(
            f"target {target_value} does not fit in {2 * m} accumulator bits"
        )
    if iterations is None:
        iterations = 1
    if iterations < 1:
        raise BenchmarkError("need at least one Grover iteration")

    total = sqrt_benchmark_qubits(m)
    circuit = Circuit(total, name=name or f"sqrt-{total}")
    operand = list(range(m))
    accumulator = list(range(m, 3 * m))
    ancillas = list(range(3 * m, total))

    for qubit in operand:
        circuit.h(qubit)
    for _ in range(iterations):
        pool = AncillaPool(ancillas)
        _oracle(circuit, operand, accumulator, target_value, pool)
        _diffusion(circuit, operand, pool)
    return circuit


def grover_iterations_for(operand_bits: int, num_solutions: int = 1) -> int:
    """The standard optimal Grover iteration count."""
    space = 2**operand_bits
    angle = math.asin(math.sqrt(num_solutions / space))
    return max(1, int(round(math.pi / (4 * angle) - 0.5)))


def _oracle(circuit, operand, accumulator, target_value, pool) -> None:
    """Phase-flip operand states whose square equals ``target_value``."""
    squarer(circuit, operand, accumulator, pool)
    flip_zero_bits(circuit, accumulator, target_value)
    multi_controlled_z(circuit, accumulator, pool)
    flip_zero_bits(circuit, accumulator, target_value)
    unsquarer(circuit, operand, accumulator, pool)


def _diffusion(circuit, operand, pool) -> None:
    """Reflection about the uniform superposition of the operand."""
    for qubit in operand:
        circuit.h(qubit)
    for qubit in operand:
        circuit.x(qubit)
    multi_controlled_z(circuit, operand, pool)
    for qubit in operand:
        circuit.x(qubit)
    for qubit in operand:
        circuit.h(qubit)
