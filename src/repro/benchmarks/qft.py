"""Quantum Fourier transform (the serial, non-commutative extra workload
the paper's discussion mentions alongside square-root and UCCSD)."""

from __future__ import annotations

import math

from repro.circuit.circuit import Circuit
from repro.errors import BenchmarkError


def qft_circuit(num_qubits: int, include_swaps: bool = True) -> Circuit:
    """Standard QFT: Hadamards plus controlled phases, optional reversal."""
    if num_qubits < 1:
        raise BenchmarkError("QFT needs at least one qubit")
    circuit = Circuit(num_qubits, name=f"qft-{num_qubits}")
    for target in range(num_qubits):
        circuit.h(target)
        for offset, control in enumerate(
            range(target + 1, num_qubits), start=2
        ):
            circuit.cphase(2.0 * math.pi / 2**offset, control, target)
    if include_swaps:
        for q in range(num_qubits // 2):
            circuit.swap(q, num_qubits - 1 - q)
    return circuit
