"""Reversible arithmetic substrate for the Grover square-root benchmark.

Everything is built from {X, CNOT, Toffoli} so the lowered circuits have
the serial, Toffoli-heavy, low-commutativity character of ScaffCC's
reversible-logic benchmarks.

Registers are *little-endian* qubit-index lists (``register[0]`` is the
least significant bit).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.circuit.circuit import Circuit
from repro.errors import BenchmarkError


class AncillaPool:
    """A checkout/return pool of clean ancilla qubits."""

    def __init__(self, qubits: Sequence[int]) -> None:
        self._free = list(qubits)
        self.high_water = 0
        self._checked_out = 0

    def take(self) -> int:
        if not self._free:
            raise BenchmarkError("ancilla pool exhausted")
        self._checked_out += 1
        self.high_water = max(self.high_water, self._checked_out)
        return self._free.pop()

    def give_back(self, qubit: int) -> None:
        self._checked_out -= 1
        self._free.append(qubit)

    def available(self) -> int:
        return len(self._free)


def controlled_increment(
    circuit: Circuit,
    control: int,
    targets: Sequence[int],
    pool: AncillaPool,
) -> None:
    """``targets += 1`` (little-endian) when ``control`` is set.

    Uses a prefix-AND Toffoli ladder: ``len(targets) - 1`` ancillas are
    taken from the pool and returned clean.
    """
    targets = list(targets)
    if not targets:
        return
    prefixes = [control]
    taken: list[int] = []
    for j in range(len(targets) - 1):
        ancilla = pool.take()
        taken.append(ancilla)
        circuit.toffoli(prefixes[-1], targets[j], ancilla)
        prefixes.append(ancilla)
    # Flip from the most significant bit down; each prefix ancilla is
    # uncomputed right after the bit above it flips, while the bits it
    # depends on are still unchanged.
    for j in range(len(targets) - 1, 0, -1):
        circuit.cnot(prefixes[j], targets[j])
        circuit.toffoli(prefixes[j - 1], targets[j - 1], taken[j - 1])
    circuit.cnot(control, targets[0])
    for ancilla in reversed(taken):
        pool.give_back(ancilla)


def add_bit_at(
    circuit: Circuit,
    bit: int,
    accumulator: Sequence[int],
    position: int,
    pool: AncillaPool,
) -> None:
    """``accumulator += bit << position`` with ripple carries."""
    accumulator = list(accumulator)
    if position >= len(accumulator):
        raise BenchmarkError(
            f"position {position} beyond accumulator width {len(accumulator)}"
        )
    controlled_increment(circuit, bit, accumulator[position:], pool)


def squarer(
    circuit: Circuit,
    operand: Sequence[int],
    accumulator: Sequence[int],
    pool: AncillaPool,
) -> None:
    """``accumulator += operand**2``.

    Uses ``x^2 = sum_i x_i 4^i + sum_{i<j} x_i x_j 2^(i+j+1)``: square
    terms add the operand bits directly; cross terms compute one partial
    product at a time into a pool ancilla, add it, and uncompute it.
    """
    operand = list(operand)
    accumulator = list(accumulator)
    if len(accumulator) < 2 * len(operand):
        raise BenchmarkError(
            f"accumulator needs {2 * len(operand)} bits, has {len(accumulator)}"
        )
    m = len(operand)
    for i in range(m):
        add_bit_at(circuit, operand[i], accumulator, 2 * i, pool)
    for i in range(m):
        for j in range(i + 1, m):
            partial = pool.take()
            circuit.toffoli(operand[i], operand[j], partial)
            add_bit_at(circuit, partial, accumulator, i + j + 1, pool)
            circuit.toffoli(operand[i], operand[j], partial)
            pool.give_back(partial)


def unsquarer(
    circuit: Circuit,
    operand: Sequence[int],
    accumulator: Sequence[int],
    pool: AncillaPool,
) -> None:
    """Inverse of :func:`squarer` (``accumulator -= operand**2``)."""
    scratch = Circuit(circuit.num_qubits, name="scratch")
    squarer(scratch, operand, accumulator, pool)
    for gate in reversed(scratch.gates):
        # X, CNOT and Toffoli are involutions, so reversal suffices.
        circuit.append(gate)


def multi_controlled_x(
    circuit: Circuit,
    controls: Sequence[int],
    target: int,
    pool: AncillaPool,
) -> None:
    """X on ``target`` controlled on all of ``controls`` (Toffoli ladder)."""
    controls = list(controls)
    if not controls:
        circuit.x(target)
        return
    if len(controls) == 1:
        circuit.cnot(controls[0], target)
        return
    if len(controls) == 2:
        circuit.toffoli(controls[0], controls[1], target)
        return
    # Compute the AND chain c0.c1, (c0.c1).c2, ... into pool ancillas,
    # apply the final Toffoli onto the target, then uncompute the chain.
    chain: list[tuple[int, int, int]] = []
    first = pool.take()
    circuit.toffoli(controls[0], controls[1], first)
    chain.append((controls[0], controls[1], first))
    for control in controls[2:-1]:
        ancilla = pool.take()
        circuit.toffoli(chain[-1][2], control, ancilla)
        chain.append((chain[-1][2], control, ancilla))
    circuit.toffoli(chain[-1][2], controls[-1], target)
    for left, right, ancilla in reversed(chain):
        circuit.toffoli(left, right, ancilla)
        pool.give_back(ancilla)


def multi_controlled_z(
    circuit: Circuit,
    qubits: Sequence[int],
    pool: AncillaPool,
) -> None:
    """Phase flip of the all-ones state of ``qubits``.

    ``Z`` is symmetric: the last qubit is conjugated by H and receives a
    multi-controlled X from the rest.
    """
    qubits = list(qubits)
    if not qubits:
        raise BenchmarkError("need at least one qubit for a phase flip")
    if len(qubits) == 1:
        circuit.z(qubits[0])
        return
    target = qubits[-1]
    circuit.h(target)
    multi_controlled_x(circuit, qubits[:-1], target, pool)
    circuit.h(target)


def flip_zero_bits(circuit: Circuit, register: Sequence[int], value: int) -> None:
    """X-mask: flips register bits where ``value`` has a zero.

    Afterwards the register holds all-ones exactly when it held
    ``value`` — the standard prelude to an equality phase flip.
    """
    for position, qubit in enumerate(register):
        if not (value >> position) & 1:
            circuit.x(qubit)
