"""Benchmark circuit generators (the paper's Table 3 suite)."""

from repro.benchmarks.ising import ising_model_circuit
from repro.benchmarks.qaoa import (
    cluster_graph,
    line_graph,
    maxcut_qaoa_circuit,
    regular4_graph,
)
from repro.benchmarks.grover import grover_sqrt_circuit, sqrt_benchmark_qubits
from repro.benchmarks.qft import qft_circuit
from repro.benchmarks.registry import (
    BenchmarkSpec,
    benchmark_by_key,
    circuit_characteristics,
    table3_suite,
)
from repro.benchmarks.uccsd import uccsd_ansatz_circuit

__all__ = [
    "BenchmarkSpec",
    "benchmark_by_key",
    "circuit_characteristics",
    "cluster_graph",
    "grover_sqrt_circuit",
    "ising_model_circuit",
    "line_graph",
    "maxcut_qaoa_circuit",
    "qft_circuit",
    "regular4_graph",
    "sqrt_benchmark_qubits",
    "table3_suite",
    "uccsd_ansatz_circuit",
]
