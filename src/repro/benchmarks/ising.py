"""Trotterized transverse-field Ising chain (paper's Ising benchmark).

One Trotter step of ``H = -J sum Z_i Z_{i+1} - h sum X_i`` on a chain:
``exp(-i J dt Z Z)`` per bond (CNOT-Rz-CNOT) in an even/odd brickwork,
then ``Rx`` mixers.  Highly parallel, perfectly local, and of medium
commutativity (neighbouring ZZ bonds commute, the Rx layer does not).
"""

from __future__ import annotations

from repro.circuit.circuit import Circuit
from repro.errors import BenchmarkError


def ising_model_circuit(
    num_qubits: int,
    trotter_steps: int = 1,
    coupling: float = 1.0,
    field: float = 0.8,
    dt: float = 0.5,
    name: str | None = None,
) -> Circuit:
    """Build the Trotterized Ising-chain evolution circuit."""
    if num_qubits < 2:
        raise BenchmarkError("the Ising chain needs at least two qubits")
    if trotter_steps < 1:
        raise BenchmarkError("need at least one Trotter step")
    circuit = Circuit(num_qubits, name=name or f"ising-{num_qubits}")
    zz_angle = 2.0 * coupling * dt
    x_angle = 2.0 * field * dt
    even_bonds = [(i, i + 1) for i in range(0, num_qubits - 1, 2)]
    odd_bonds = [(i, i + 1) for i in range(1, num_qubits - 1, 2)]
    for _ in range(trotter_steps):
        for bonds in (even_bonds, odd_bonds):
            for a, b in bonds:
                circuit.cnot(a, b)
                circuit.rz(zz_angle, b)
                circuit.cnot(a, b)
        for q in range(num_qubits):
            circuit.rx(x_angle, q)
    return circuit
