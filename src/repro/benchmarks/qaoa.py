"""QAOA MAXCUT circuits (paper benchmarks MAXCUT-line/reg4/cluster).

A depth-``p`` QAOA circuit for MAXCUT on graph ``G``: Hadamards prepare
the uniform superposition, each layer applies ``exp(-i gamma Z_u Z_v)``
per edge (decomposed as CNOT-Rz-CNOT, the diagonal structure the paper's
commutativity detection feeds on) followed by ``Rx(2 beta)`` mixers.

The three graph families realize the paper's spatial-locality spread:
a line (high locality), a random 4-regular graph (medium), and a cluster
graph with dense inter-cluster edges (low).
"""

from __future__ import annotations

import networkx as nx

from repro.circuit.circuit import Circuit
from repro.errors import BenchmarkError

# The paper's variationally-determined angles for the Fig. 4 example.
PAPER_GAMMA = 5.67
PAPER_BETA = 1.26


def maxcut_qaoa_circuit(
    graph: nx.Graph,
    gamma: float = PAPER_GAMMA,
    beta: float = PAPER_BETA,
    layers: int = 1,
    name: str = "maxcut",
) -> Circuit:
    """Build the QAOA MAXCUT circuit for a graph.

    Vertices must be integers ``0..n-1``; each becomes one qubit.
    """
    vertices = sorted(graph.nodes)
    if vertices != list(range(len(vertices))):
        raise BenchmarkError("graph vertices must be 0..n-1 integers")
    if layers < 1:
        raise BenchmarkError("need at least one QAOA layer")
    circuit = Circuit(len(vertices), name=name)
    for vertex in vertices:
        circuit.h(vertex)
    for _ in range(layers):
        for u, v in sorted(graph.edges):
            circuit.cnot(u, v)
            circuit.rz(2.0 * gamma, v)
            circuit.cnot(u, v)
        for vertex in vertices:
            circuit.rx(2.0 * beta, vertex)
    return circuit


def line_graph(num_vertices: int) -> nx.Graph:
    """Path graph: the high-spatial-locality instance."""
    if num_vertices < 2:
        raise BenchmarkError("a line needs at least two vertices")
    return nx.path_graph(num_vertices)


def regular4_graph(num_vertices: int, seed: int = 20190413) -> nx.Graph:
    """Random 4-regular graph: the medium-spatial-locality instance."""
    if num_vertices <= 4 or (num_vertices * 4) % 2:
        raise BenchmarkError("4-regular graphs need n > 4 with even n*4")
    return nx.random_regular_graph(4, num_vertices, seed=seed)


def cluster_graph(
    num_vertices: int,
    cluster_size: int = 6,
    inter_probability: float = 0.25,
    seed: int = 20190413,
) -> nx.Graph:
    """Dense clusters plus random inter-cluster edges: low locality.

    Vertices are grouped into complete clusters; additional edges connect
    vertices of *different* clusters with the given probability, which is
    what destroys spatial locality (no grid embedding keeps all the
    cross-cluster pairs close).
    """
    if num_vertices % cluster_size:
        raise BenchmarkError(
            f"{num_vertices} vertices do not split into clusters of "
            f"{cluster_size}"
        )
    import numpy as np

    rng = np.random.default_rng(seed)
    graph = nx.Graph()
    graph.add_nodes_from(range(num_vertices))
    num_clusters = num_vertices // cluster_size
    members = [
        list(range(c * cluster_size, (c + 1) * cluster_size))
        for c in range(num_clusters)
    ]
    for cluster in members:
        for i, u in enumerate(cluster):
            for v in cluster[i + 1:]:
                graph.add_edge(u, v)
    for a in range(num_clusters):
        for b in range(a + 1, num_clusters):
            for u in members[a]:
                for v in members[b]:
                    if rng.random() < inter_probability:
                        graph.add_edge(u, v)
    return graph
