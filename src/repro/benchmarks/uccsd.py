"""UCCSD ansatz circuits (paper benchmarks UCCSD-n4/n6).

Unitary Coupled Cluster with Singles and Doubles under the Jordan-Wigner
transformation: every excitation term becomes a set of Pauli-string
exponentials, each realized with the standard basis-change + CNOT-ladder
+ Rz construction.  The resulting circuits are serial, spatially spread
(the JW Z-strings touch every intermediate qubit) and essentially
non-commutative — the "machine-unaware ansatz" of the paper's Sec. 5.2.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.circuit import Circuit
from repro.errors import BenchmarkError


def pauli_exponential(circuit: Circuit, pauli: dict[int, str], theta: float) -> None:
    """Append ``exp(-i theta/2 * P)`` for Pauli string ``P``.

    Args:
        circuit: Destination circuit.
        pauli: Map qubit -> 'X'|'Y'|'Z' (identity qubits omitted).
        theta: Rotation angle.
    """
    if not pauli:
        return
    qubits = sorted(pauli)
    for qubit in qubits:
        axis = pauli[qubit].upper()
        if axis == "X":
            circuit.h(qubit)
        elif axis == "Y":
            circuit.rx(np.pi / 2.0, qubit)
        elif axis != "Z":
            raise BenchmarkError(f"bad Pauli letter {pauli[qubit]!r}")
    for a, b in zip(qubits, qubits[1:]):
        circuit.cnot(a, b)
    circuit.rz(theta, qubits[-1])
    for a, b in reversed(list(zip(qubits, qubits[1:]))):
        circuit.cnot(a, b)
    for qubit in qubits:
        axis = pauli[qubit].upper()
        if axis == "X":
            circuit.h(qubit)
        elif axis == "Y":
            circuit.rx(-np.pi / 2.0, qubit)


def _jw_string(kind_by_qubit: dict[int, str], low: int, high: int) -> dict[int, str]:
    """Insert the Jordan-Wigner Z chain between ``low`` and ``high``."""
    full = dict(kind_by_qubit)
    for qubit in range(low + 1, high):
        if qubit not in full:
            full[qubit] = "Z"
    return full


def single_excitation(circuit: Circuit, occupied: int, virtual: int, theta: float) -> None:
    """``exp(theta (a_v^dag a_o - h.c.))`` under Jordan-Wigner."""
    low, high = sorted((occupied, virtual))
    pauli_exponential(
        circuit,
        _jw_string({occupied: "X", virtual: "Y"}, low, high),
        theta / 2.0,
    )
    pauli_exponential(
        circuit,
        _jw_string({occupied: "Y", virtual: "X"}, low, high),
        -theta / 2.0,
    )


_DOUBLE_TERMS = (
    ("XXXY", 1.0),
    ("XXYX", 1.0),
    ("XYXX", -1.0),
    ("YXXX", -1.0),
    ("YYYX", -1.0),
    ("YYXY", -1.0),
    ("YXYY", 1.0),
    ("XYYY", 1.0),
)


def double_excitation(
    circuit: Circuit,
    occupied_a: int,
    occupied_b: int,
    virtual_a: int,
    virtual_b: int,
    theta: float,
) -> None:
    """``exp(theta (a_va^dag a_vb^dag a_ob a_oa - h.c.))`` under JW:
    the standard eight Pauli-string exponentials."""
    orbitals = (occupied_a, occupied_b, virtual_a, virtual_b)
    if len(set(orbitals)) != 4:
        raise BenchmarkError("double excitation needs four distinct orbitals")
    low, high = min(orbitals), max(orbitals)
    for letters, sign in _DOUBLE_TERMS:
        assignment = dict(zip(orbitals, letters))
        pauli_exponential(
            circuit,
            _jw_string(assignment, low, high),
            sign * theta / 8.0,
        )


def uccsd_ansatz_circuit(
    num_orbitals: int,
    num_electrons: int = 2,
    amplitudes: np.ndarray | None = None,
    seed: int = 20190413,
    name: str | None = None,
) -> Circuit:
    """Build a full UCCSD ansatz circuit.

    Args:
        num_orbitals: Spin orbitals (= qubits).
        num_electrons: Occupied spin orbitals (the reference state).
        amplitudes: Cluster amplitudes, one per excitation (singles
            first, then doubles); random when omitted.
    """
    if num_electrons < 1 or num_electrons >= num_orbitals:
        raise BenchmarkError(
            f"need 1 <= electrons < orbitals, got {num_electrons}/{num_orbitals}"
        )
    occupied = list(range(num_electrons))
    virtual = list(range(num_electrons, num_orbitals))
    singles = [(o, v) for o in occupied for v in virtual]
    doubles = [
        (oa, ob, va, vb)
        for i, oa in enumerate(occupied)
        for ob in occupied[i + 1:]
        for j, va in enumerate(virtual)
        for vb in virtual[j + 1:]
    ]
    count = len(singles) + len(doubles)
    if amplitudes is None:
        rng = np.random.default_rng(seed)
        amplitudes = rng.uniform(0.1, 1.0, size=count)
    amplitudes = np.asarray(amplitudes, dtype=float)
    if amplitudes.shape != (count,):
        raise BenchmarkError(
            f"need {count} amplitudes ({len(singles)} singles + "
            f"{len(doubles)} doubles), got {amplitudes.shape}"
        )
    circuit = Circuit(num_orbitals, name=name or f"uccsd-{num_orbitals}")
    # Reference state |1...10...0>.
    for qubit in occupied:
        circuit.x(qubit)
    cursor = 0
    for occupied_orbital, virtual_orbital in singles:
        single_excitation(
            circuit, occupied_orbital, virtual_orbital, amplitudes[cursor]
        )
        cursor += 1
    for oa, ob, va, vb in doubles:
        double_excitation(circuit, oa, ob, va, vb, amplitudes[cursor])
        cursor += 1
    return circuit
