"""The Table 3 benchmark suite and program-characteristic metrics.

Each entry reproduces one row of paper Table 3 (name, purpose, qubit
count and the qualitative parallelism / spatial-locality / commutativity
labels).  :func:`circuit_characteristics` computes quantitative versions
of those labels so the reproduction can check them rather than assert
them.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

from repro.benchmarks.grover import grover_sqrt_circuit, sqrt_benchmark_qubits
from repro.benchmarks.ising import ising_model_circuit
from repro.benchmarks.qaoa import (
    cluster_graph,
    line_graph,
    maxcut_qaoa_circuit,
    regular4_graph,
)
from repro.benchmarks.uccsd import uccsd_ansatz_circuit
from repro.circuit.circuit import Circuit
from repro.errors import BenchmarkError


@dataclasses.dataclass(frozen=True)
class BenchmarkSpec:
    """One Table 3 row."""

    key: str
    purpose: str
    qubits: int
    parallelism: str
    spatial_locality: str
    commutativity: str
    factory: Callable[[], Circuit]

    def build(self) -> Circuit:
        circuit = self.factory()
        if circuit.num_qubits != self.qubits:
            raise BenchmarkError(
                f"{self.key}: expected {self.qubits} qubits, "
                f"built {circuit.num_qubits}"
            )
        return circuit


def table3_suite(scale: str = "paper") -> list[BenchmarkSpec]:
    """The benchmark suite.

    Args:
        scale: ``"paper"`` builds the paper's sizes (Table 3);
            ``"small"`` builds reduced instances with the same structure
            for fast tests and smoke runs.
    """
    if scale == "paper":
        sizes = {
            "line": 20,
            "reg4": 30,
            "cluster": 30,
            "ising_a": 30,
            "ising_b": 60,
            "sqrt_a": 3,
            "sqrt_b": 4,
            "sqrt_c": 5,
            "uccsd_a": 4,
            "uccsd_b": 6,
        }
    elif scale == "small":
        sizes = {
            "line": 6,
            "reg4": 8,
            "cluster": 8,
            "ising_a": 6,
            "ising_b": 8,
            "sqrt_a": 2,
            "sqrt_b": 2,
            "sqrt_c": 3,
            "uccsd_a": 4,
            "uccsd_b": 4,
        }
    else:
        raise BenchmarkError(f"unknown scale {scale!r}")

    cluster_kwargs = (
        {"cluster_size": 6} if scale == "paper" else {"cluster_size": 4}
    )
    specs = [
        BenchmarkSpec(
            key=f"maxcut-line-{sizes['line']}",
            purpose="MAXCUT on a linear graph",
            qubits=sizes["line"],
            parallelism="Low",
            spatial_locality="High",
            commutativity="High",
            factory=lambda: maxcut_qaoa_circuit(
                line_graph(sizes["line"]), name="maxcut-line"
            ),
        ),
        BenchmarkSpec(
            key=f"maxcut-reg4-{sizes['reg4']}",
            purpose="MAXCUT on a random 4-regular graph",
            qubits=sizes["reg4"],
            parallelism="High",
            spatial_locality="Medium",
            commutativity="High",
            factory=lambda: maxcut_qaoa_circuit(
                regular4_graph(sizes["reg4"]), name="maxcut-reg4"
            ),
        ),
        BenchmarkSpec(
            key=f"maxcut-cluster-{sizes['cluster']}",
            purpose="MAXCUT on a cluster graph",
            qubits=sizes["cluster"],
            parallelism="Medium",
            spatial_locality="Low",
            commutativity="High",
            factory=lambda: maxcut_qaoa_circuit(
                cluster_graph(sizes["cluster"], **cluster_kwargs),
                name="maxcut-cluster",
            ),
        ),
        BenchmarkSpec(
            key=f"ising-{sizes['ising_a']}",
            purpose="Find ground state of Ising model",
            qubits=sizes["ising_a"],
            parallelism="High",
            spatial_locality="High",
            commutativity="Medium",
            factory=lambda: ising_model_circuit(sizes["ising_a"]),
        ),
        BenchmarkSpec(
            key=f"ising-{sizes['ising_b']}",
            purpose="Find ground state of Ising model",
            qubits=sizes["ising_b"],
            parallelism="High",
            spatial_locality="High",
            commutativity="Medium",
            factory=lambda: ising_model_circuit(sizes["ising_b"]),
        ),
        BenchmarkSpec(
            key=f"sqrt-{sqrt_benchmark_qubits(sizes['sqrt_a'])}",
            purpose="Grover algorithm for polynomial search",
            qubits=sqrt_benchmark_qubits(sizes["sqrt_a"]),
            parallelism="Low",
            spatial_locality="High",
            commutativity="Low",
            factory=lambda: grover_sqrt_circuit(sizes["sqrt_a"]),
        ),
        BenchmarkSpec(
            key=f"sqrt-{sqrt_benchmark_qubits(sizes['sqrt_b'])}-b",
            purpose="Grover algorithm for polynomial search",
            qubits=sqrt_benchmark_qubits(sizes["sqrt_b"]),
            parallelism="Low",
            spatial_locality="High",
            commutativity="Low",
            factory=lambda: grover_sqrt_circuit(sizes["sqrt_b"]),
        ),
        BenchmarkSpec(
            key=f"sqrt-{sqrt_benchmark_qubits(sizes['sqrt_c'])}-c",
            purpose="Grover algorithm for polynomial search",
            qubits=sqrt_benchmark_qubits(sizes["sqrt_c"]),
            parallelism="Low",
            spatial_locality="High",
            commutativity="Low",
            factory=lambda: grover_sqrt_circuit(sizes["sqrt_c"]),
        ),
        BenchmarkSpec(
            key=f"uccsd-{sizes['uccsd_a']}",
            purpose="UCCSD ansatz for VQE",
            qubits=sizes["uccsd_a"],
            parallelism="Low",
            spatial_locality="High",
            commutativity="Low",
            factory=lambda: uccsd_ansatz_circuit(sizes["uccsd_a"]),
        ),
        BenchmarkSpec(
            key=f"uccsd-{sizes['uccsd_b']}-b",
            purpose="UCCSD ansatz for VQE",
            qubits=sizes["uccsd_b"],
            parallelism="Low" if scale == "small" else "Low",
            spatial_locality="Medium",
            commutativity="Low",
            factory=lambda: uccsd_ansatz_circuit(
                sizes["uccsd_b"],
                num_electrons=2 if sizes["uccsd_b"] <= 4 else 3,
            ),
        ),
    ]
    return specs


def benchmark_by_key(key: str, scale: str = "paper") -> BenchmarkSpec:
    """Look up one suite entry."""
    for spec in table3_suite(scale):
        if spec.key == key:
            return spec
    raise BenchmarkError(f"unknown benchmark {key!r}")


def circuit_characteristics(circuit: Circuit) -> dict[str, float]:
    """Quantitative program characteristics (Table 3 reproduction).

    * ``parallelism`` — average gates per layer over the qubit count
      (1.0 means every qubit busy in every layer).
    * ``commutativity`` — fraction of gates absorbed into diagonal
      blocks by the commutativity detector.
    * ``spatial_locality`` — inverse mean grid distance of interacting
      pairs under the bisection placement (1.0 = all neighbours).
    """
    from repro.aggregation.diagonal import detect_diagonal_blocks
    from repro.aggregation.instruction import AggregatedInstruction
    from repro.mapping.placement import initial_placement, interaction_graph_of

    if not circuit.gates:
        return {"parallelism": 0.0, "commutativity": 0.0, "spatial_locality": 1.0}

    parallelism = (len(circuit) / circuit.depth) / circuit.num_qubits

    nodes = detect_diagonal_blocks(circuit.gates)
    absorbed = sum(
        len(node)
        for node in nodes
        if isinstance(node, AggregatedInstruction)
    )
    commutativity = absorbed / len(circuit)

    graph = interaction_graph_of(circuit)
    if graph.number_of_edges():
        placement = initial_placement(circuit)
        average = placement.average_distance(graph)
        spatial_locality = 1.0 / max(average, 1.0)
    else:
        spatial_locality = 1.0
    return {
        "parallelism": parallelism,
        "commutativity": commutativity,
        "spatial_locality": spatial_locality,
    }


def classify(value: float, low: float, high: float) -> str:
    """Map a metric to the paper's Low/Medium/High labels."""
    if value < low:
        return "Low"
    if value < high:
        return "Medium"
    return "High"
