"""Differential compilation: one circuit, every strategy, many devices.

:func:`differential_compile` compiles a circuit under every registered
strategy crossed with a set of device presets, checks each result
against the source program with
:func:`~repro.verification.equivalence.verify_equivalence`, and reports
every failing ``(strategy, device)`` cell.  Since every compilation is
compared against the same source semantics, any two passing cells are
also pairwise equivalent — one reference, full cross-strategy coverage.

:func:`minimize_circuit` shrinks a failing circuit to a (locally)
minimal gate subsequence that still fails, which is what the fuzz
harness (:mod:`repro.testing.fuzz`) prints as its reproducer.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Sequence

from repro.circuit.circuit import Circuit
from repro.compiler.pipeline import compile_circuit
from repro.compiler.strategies import Strategy, registered_strategies
from repro.control.cache import PulseCache
from repro.control.unit import OptimalControlUnit
from repro.device.device import Device
from repro.device.presets import device_by_key
from repro.device.topology import grid_for
from repro.errors import BenchmarkError, ReproError
from repro.testing.strategies import preset_key_for
from repro.verification.equivalence import EquivalenceReport

#: Device families :func:`default_device_presets` draws from, in order.
DEFAULT_DEVICE_FAMILIES: tuple[str, ...] = (
    "paper-grid",
    "line",
    "ring",
    "all-to-all",
)


def default_device_presets(
    num_qubits: int,
    families: Sequence[str] = DEFAULT_DEVICE_FAMILIES,
    minimum: int = 3,
) -> list[str]:
    """Preset keys covering every sizeable family, sized to a circuit.

    Deduplicated (a 1xN paper grid *is* the line; a ring of three *is*
    all-to-all-3) while preserving family order, so the list always
    names topologically distinct targets.  Narrow circuits collapse
    many families onto one wiring, so the list is padded with larger
    (ancilla-bearing) targets until ``minimum`` distinct devices remain
    — routing through idle cells is exactly the regime worth fuzzing.
    """
    keys: list[str] = []
    seen_wirings: set[tuple] = set()

    def add(key: str) -> None:
        topology = device_by_key(key).topology
        # Compare raw wiring, not Topology.signature(): a 1xN paper grid
        # and a line-N differ in kind tag but are the same graph.
        wiring = (topology.num_qubits, tuple(sorted(topology.edges())))
        if wiring not in seen_wirings:
            seen_wirings.add(wiring)
            keys.append(key)

    for family in families:
        add(preset_key_for(family, num_qubits))
    padded = num_qubits
    while len(keys) < minimum and padded < num_qubits + 8:
        padded += 1
        for family in families:
            if len(keys) >= minimum:
                break
            add(preset_key_for(family, padded))
    return keys


@dataclasses.dataclass
class CompileOutcome:
    """One (strategy, device) cell of a differential run."""

    strategy_key: str
    device_key: str
    report: EquivalenceReport | None = None
    error: str | None = None
    latency_ns: float | None = None

    @property
    def ok(self) -> bool:
        return (
            self.error is None
            and self.report is not None
            and self.report.equivalent
        )

    def describe(self) -> str:
        cell = f"{self.strategy_key} @ {self.device_key}"
        if self.error is not None:
            return f"{cell}: ERROR {self.error}"
        if self.report is None:
            return f"{cell}: not checked"
        status = "ok" if self.report.equivalent else "MISMATCH"
        return (
            f"{cell}: {status} (max deviation "
            f"{self.report.max_deviation:.3e})"
        )


@dataclasses.dataclass
class DifferentialReport:
    """Every outcome of one circuit's strategy-by-device sweep."""

    circuit_name: str
    outcomes: list[CompileOutcome]

    @property
    def failures(self) -> list[CompileOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def __bool__(self) -> bool:
        return self.ok

    def summary(self) -> str:
        failing = self.failures
        if not failing:
            return (
                f"{self.circuit_name}: {len(self.outcomes)} compilations, "
                f"all equivalent"
            )
        lines = [
            f"{self.circuit_name}: {len(failing)}/{len(self.outcomes)} "
            f"compilations FAILED"
        ]
        lines.extend(f"  {outcome.describe()}" for outcome in failing)
        return "\n".join(lines)


def differential_compile(
    circuit: Circuit,
    strategies: Sequence[Strategy | str] | None = None,
    devices: Sequence[Device | str] | None = None,
    *,
    method: str = "auto",
    states: int = 6,
    atol: float | None = None,
    seed: int = 20190413,
    cache: PulseCache | None = None,
    fail_fast: bool = False,
    executor: str = "serial",
    verify_ir: bool = False,
) -> DifferentialReport:
    """Compile one circuit under every strategy x device and verify all.

    Args:
        circuit: The program under test.
        strategies: Strategies (objects or registered keys); defaults to
            every registered strategy, built-ins included.
        devices: Devices or preset keys; defaults to
            :func:`default_device_presets` sized to the circuit.
        method / states / atol / seed: Forwarded to
            :func:`~repro.verification.equivalence.verify_equivalence`.
        cache: Shared pulse cache; one is created (and shared across
            every cell of this sweep) when omitted.
        fail_fast: Stop at the first failing cell.
        verify_ir: Compile every cell with between-pass IR verification
            (:mod:`repro.analysis`): a failure then reads
            ``IRVerificationError`` naming the pass and rule that broke,
            instead of a bare end-of-pipeline mismatch.
        executor: ``"serial"`` compiles every cell in this process;
            ``"process"`` fans the cells across a
            ``BatchCompiler(executor="process")`` — each cell's job and
            result cross the process boundary as :mod:`repro.ir` wire
            payloads, so the differential sweep doubles as an end-to-end
            round-trip check.  A cell that raises in batch mode is
            re-attributed by rerunning the circuit serially.

    Returns:
        A :class:`DifferentialReport`; ``report.ok`` iff every cell
        compiled and verified.
    """
    if executor not in ("serial", "process"):
        raise BenchmarkError(
            f"executor must be 'serial' or 'process', got {executor!r}"
        )
    if strategies is None:
        strategies = registered_strategies()
    strategies = [
        strategy if isinstance(strategy, Strategy) else str(strategy)
        for strategy in strategies
    ]
    if not strategies:
        raise BenchmarkError("differential_compile needs at least one strategy")
    if devices is None:
        devices = default_device_presets(circuit.num_qubits)
    if not devices:
        raise BenchmarkError("differential_compile needs at least one device")
    cache = cache if cache is not None else PulseCache()

    resolved: list[tuple[str, Device]] = []
    for entry in devices:
        device = device_by_key(entry) if isinstance(entry, str) else entry
        if device.num_qubits < circuit.num_qubits:
            raise BenchmarkError(
                f"device {device.name or device!r} has {device.num_qubits} "
                f"qubits for the {circuit.num_qubits}-qubit circuit "
                f"{circuit.name!r}"
            )
        resolved.append((device.name or repr(device), device))

    if executor == "process":
        if method == "propagator":
            raise BenchmarkError(
                "the propagator method needs an in-process oracle; "
                "use executor='serial'"
            )
        report = _differential_via_processes(
            circuit,
            strategies,
            resolved,
            method=method,
            states=states,
            atol=atol,
            seed=seed,
            cache=cache,
            fail_fast=fail_fast,
            verify_ir=verify_ir,
        )
        if report is not None:
            return report
        # A cell raised inside the batch (which aborts the whole batch);
        # fall through to the serial sweep so the error lands on its cell.

    outcomes: list[CompileOutcome] = []
    for device_key, device in resolved:
        # One oracle per device (matched-oracle rule for heterogeneous
        # targets), shared across strategies through the common cache.
        ocu = OptimalControlUnit(device=device, cache=cache)
        for strategy in strategies:
            strategy_key = (
                strategy.key if isinstance(strategy, Strategy) else strategy
            )
            outcome = CompileOutcome(
                strategy_key=strategy_key, device_key=device_key
            )
            try:
                result = compile_circuit(
                    circuit, strategy, device=device, ocu=ocu,
                    verify_ir=verify_ir,
                )
                outcome.latency_ns = result.latency_ns
                outcome.report = result.verify_equivalence(
                    circuit,
                    method=method,
                    states=states,
                    atol=atol,
                    seed=seed,
                    ocu=ocu if method == "propagator" else None,
                )
            except ReproError as error:
                outcome.error = f"{type(error).__name__}: {error}"
            outcomes.append(outcome)
            if fail_fast and not outcome.ok:
                return DifferentialReport(circuit.name, outcomes)
    return DifferentialReport(circuit.name, outcomes)


def _differential_via_processes(
    circuit: Circuit,
    strategies: Sequence[Strategy | str],
    resolved: Sequence[tuple[str, Device]],
    *,
    method: str,
    states: int,
    atol: float | None,
    seed: int,
    cache: PulseCache,
    fail_fast: bool,
    verify_ir: bool = False,
) -> DifferentialReport | None:
    """One circuit's cells through the process-backed batch engine.

    Returns None when any cell raised: batch mode aborts on the first
    job error without telling us which cells would have succeeded, so
    the caller reruns serially for per-cell attribution.
    """
    from repro.compiler.batch import BatchCompiler, BatchJob

    cells = [
        (strategy, device_key, device)
        for device_key, device in resolved
        for strategy in strategies
    ]
    jobs = [
        BatchJob(circuit=circuit, strategy=strategy, device=device)
        for strategy, _, device in cells
    ]
    engine = BatchCompiler(cache=cache, executor="process", verify_ir=verify_ir)
    try:
        report = engine.compile_batch(jobs)
    except ReproError:
        return None
    outcomes: list[CompileOutcome] = []
    for (strategy, device_key, _), result in zip(cells, report.results):
        strategy_key = (
            strategy.key if isinstance(strategy, Strategy) else strategy
        )
        outcome = CompileOutcome(
            strategy_key=strategy_key, device_key=device_key
        )
        outcome.latency_ns = result.latency_ns
        # The result crossed the process boundary; verifying it against
        # the *local* source circuit checks compilation and round trip.
        # A raising verifier is a per-cell failure, same as serially.
        try:
            outcome.report = result.verify_equivalence(
                circuit, method=method, states=states, atol=atol, seed=seed
            )
        except ReproError as error:
            outcome.error = f"{type(error).__name__}: {error}"
        outcomes.append(outcome)
        if fail_fast and not outcome.ok:
            break
    return DifferentialReport(circuit.name, outcomes)


def minimize_circuit(
    circuit: Circuit,
    still_fails: Callable[[Circuit], bool],
    max_checks: int = 400,
) -> Circuit:
    """Shrink a failing circuit to a 1-minimal failing gate subsequence.

    Greedy delta debugging over the gate list: repeatedly delete chunks
    (halving the chunk size down to single gates) while ``still_fails``
    keeps returning True, until no single-gate deletion reproduces the
    failure or the check budget runs out.  The register width is kept —
    renumbering qubits would change placement and could mask the bug.

    Args:
        circuit: A circuit for which ``still_fails(circuit)`` is True.
        still_fails: Predicate re-running the failing scenario.
        max_checks: Budget of predicate evaluations.

    Returns:
        A new circuit (named ``<original>-min``) that still fails.
    """
    gates = list(circuit.gates)
    checks = 0

    def rebuild(subset: list) -> Circuit:
        return Circuit.from_gates(
            circuit.num_qubits, subset, name=f"{circuit.name}-min"
        )

    chunk = max(1, len(gates) // 2)
    while checks < max_checks:
        index = 0
        removed_any = False
        while index < len(gates) and checks < max_checks:
            candidate = gates[:index] + gates[index + chunk:]
            if not candidate:
                index += chunk
                continue
            checks += 1
            if still_fails(rebuild(candidate)):
                gates = candidate
                removed_any = True
                # Same index now names the next chunk; retry in place.
            else:
                index += chunk
        if chunk > 1:
            chunk //= 2
        elif not removed_any:
            # A full single-gate pass removed nothing: 1-minimal.
            break
    return rebuild(gates)


def grid_preset_for(num_qubits: int) -> str:
    """Preset key of the paper grid the compiler would auto-size."""
    grid = grid_for(num_qubits)
    return f"paper-grid-{grid.rows}x{grid.cols}"
