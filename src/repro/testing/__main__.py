"""``python -m repro.testing`` runs the differential fuzz CLI."""

import sys

from repro.testing.fuzz import main

if __name__ == "__main__":
    sys.exit(main())
