"""Seeded random-circuit generators for differential testing.

Three circuit *families* stress different compiler paths:

* ``"soup"`` — unstructured gate soup (uniform mix of drives, phases
  and entanglers): exercises routing and generic scheduling.
* ``"diagonal"`` — diagonal-heavy programs (RZ/CZ/CPHASE/RZZ runs with
  occasional basis changes): exercises diagonal-block detection, CLS
  reordering and the hand-optimization rewrite rules.
* ``"layered"`` — QAOA-shaped alternation of an entangling phase layer
  over random pairs and a transverse drive layer: exercises
  commutativity analysis at scale and the aggregation loop.

Every generator is a pure function of its arguments — the same
``(family, num_qubits, num_gates, seed)`` quadruple always produces the
same circuit, which is what lets a fuzz failure be reproduced from the
numbers in its printed report.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.circuit import Circuit
from repro.errors import BenchmarkError

CIRCUIT_FAMILIES: tuple[str, ...] = ("soup", "diagonal", "layered")
"""Registered family names, accepted by :func:`random_circuit`."""


def random_circuit(
    num_qubits: int,
    num_gates: int,
    seed: int,
    family: str = "soup",
    name: str | None = None,
) -> Circuit:
    """One seeded random circuit from the named family.

    Args:
        num_qubits: Register width (parameterizes every family).
        num_gates: Target gate count (the ``"layered"`` family rounds to
            whole layers, so its exact count may differ slightly).
        seed: Determines the circuit completely, given the other args.
        family: One of :data:`CIRCUIT_FAMILIES`.
        name: Circuit name; defaults to a self-describing
            ``<family>-q<width>-g<gates>-s<seed>`` label so failures
            identify their own recipe.
    """
    try:
        generator = _GENERATORS[family]
    except KeyError:
        raise BenchmarkError(
            f"unknown circuit family {family!r}; "
            f"choose from {CIRCUIT_FAMILIES}"
        ) from None
    if num_qubits < 1:
        raise BenchmarkError("random circuits need at least one qubit")
    if num_gates < 0:
        raise BenchmarkError(f"negative gate count {num_gates}")
    if name is None:
        name = f"{family}-q{num_qubits}-g{num_gates}-s{seed}"
    rng = np.random.default_rng(seed)
    circuit = Circuit(num_qubits, name=name)
    generator(circuit, num_gates, rng)
    return circuit


def gate_soup_circuit(
    num_qubits: int, num_gates: int, seed: int, name: str | None = None
) -> Circuit:
    """Unstructured uniform gate soup (see :func:`random_circuit`)."""
    return random_circuit(num_qubits, num_gates, seed, "soup", name)


def diagonal_heavy_circuit(
    num_qubits: int, num_gates: int, seed: int, name: str | None = None
) -> Circuit:
    """Diagonal-dominated circuit (see :func:`random_circuit`)."""
    return random_circuit(num_qubits, num_gates, seed, "diagonal", name)


def layered_circuit(
    num_qubits: int, num_gates: int, seed: int, name: str | None = None
) -> Circuit:
    """QAOA-shaped layered circuit (see :func:`random_circuit`)."""
    return random_circuit(num_qubits, num_gates, seed, "layered", name)


# ----------------------------------------------------------------------
# Family bodies (append into the circuit in place)


def _random_pair(rng: np.random.Generator, num_qubits: int) -> tuple[int, int]:
    a, b = rng.choice(num_qubits, size=2, replace=False)
    return int(a), int(b)


def _angle(rng: np.random.Generator) -> float:
    return float(rng.uniform(0.1, 2.0 * np.pi - 0.1))


def _soup(circuit: Circuit, num_gates: int, rng: np.random.Generator) -> None:
    n = circuit.num_qubits
    for _ in range(num_gates):
        kind = int(rng.integers(0, 8 if n >= 2 else 5))
        qubit = int(rng.integers(n))
        if kind == 0:
            circuit.h(qubit)
        elif kind == 1:
            circuit.rx(_angle(rng), qubit)
        elif kind == 2:
            circuit.ry(_angle(rng), qubit)
        elif kind == 3:
            circuit.rz(_angle(rng), qubit)
        elif kind == 4:
            circuit.t(qubit)
        elif kind == 5:
            circuit.cnot(*_random_pair(rng, n))
        elif kind == 6:
            circuit.rzz(_angle(rng), *_random_pair(rng, n))
        else:
            circuit.cz(*_random_pair(rng, n))


def _diagonal(
    circuit: Circuit, num_gates: int, rng: np.random.Generator
) -> None:
    n = circuit.num_qubits
    for _ in range(num_gates):
        # ~80% diagonal content; the rest are basis changes that break
        # diagonal runs and force the detector to close blocks.
        if rng.random() < 0.8:
            kind = int(rng.integers(0, 5 if n >= 2 else 2))
            qubit = int(rng.integers(n))
            if kind == 0:
                circuit.rz(_angle(rng), qubit)
            elif kind == 1:
                circuit.t(qubit)
            elif kind == 2:
                circuit.cz(*_random_pair(rng, n))
            elif kind == 3:
                circuit.cphase(_angle(rng), *_random_pair(rng, n))
            else:
                circuit.rzz(_angle(rng), *_random_pair(rng, n))
        else:
            qubit = int(rng.integers(n))
            if rng.random() < 0.5:
                circuit.h(qubit)
            else:
                circuit.rx(_angle(rng), qubit)


def _layered(
    circuit: Circuit, num_gates: int, rng: np.random.Generator
) -> None:
    n = circuit.num_qubits
    if n == 1:
        for _ in range(num_gates):
            circuit.rx(_angle(rng), 0)
        return
    # One layer = ~n/2 random-pair phase couplings + n mixer drives.
    gates_per_layer = max(1, n // 2) + n
    layers = max(1, round(num_gates / gates_per_layer))
    for _ in range(layers):
        for _ in range(max(1, n // 2)):
            circuit.rzz(_angle(rng), *_random_pair(rng, n))
        beta = _angle(rng)
        for qubit in range(n):
            circuit.rx(beta, qubit)


_GENERATORS = {
    "soup": _soup,
    "diagonal": _diagonal,
    "layered": _layered,
}
