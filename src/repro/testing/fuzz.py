"""Seeded differential fuzzing with failure minimization.

:func:`run_fuzz` generates seeded random circuits (cycling through the
generator families), runs each through
:func:`~repro.testing.differential.differential_compile` — every
registered strategy crossed with a set of device presets — and, when a
cell fails, shrinks the circuit with
:func:`~repro.testing.differential.minimize_circuit` to a minimal
failing ``(circuit, strategy, device)`` triple.

The module is also a CLI (the CI smoke job)::

    python -m repro.testing --circuits 25 --seed 20190413 \\
        --max-qubits 4 --time-budget 900 --artifact fuzz-reproducer.json

A failure prints its reproduction recipe (family, width, gates, seed,
strategy, device) and the minimized circuit as QASM, writes the same to
the ``--artifact`` JSON, and exits nonzero.  Reproduce locally with the
same ``--seed``, or rebuild the one circuit via
``repro.testing.random_circuit(width, gates, seed, family)``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from collections.abc import Sequence

from repro.circuit.qasm import circuit_to_qasm
from repro.compiler.strategies import available_strategy_keys
from repro.control.cache import PulseCache
from repro.errors import BenchmarkError
from repro.testing.differential import (
    DEFAULT_DEVICE_FAMILIES,
    default_device_presets,
    differential_compile,
    minimize_circuit,
)
from repro.testing.generators import CIRCUIT_FAMILIES, random_circuit
from repro.testing.strategies import SIZEABLE_DEVICE_FAMILIES

_DEFAULT_SEED = 20190413


@dataclasses.dataclass
class FuzzFailure:
    """One minimized failing (circuit, strategy, device) triple."""

    family: str
    num_qubits: int
    num_gates: int
    seed: int
    strategy_key: str
    device_key: str
    detail: str
    minimized_gates: int
    minimized_qasm: str

    def reproduction(self) -> str:
        """A copy-pasteable recipe that rebuilds the failing scenario."""
        return (
            f"circuit = repro.testing.random_circuit("
            f"{self.num_qubits}, {self.num_gates}, {self.seed}, "
            f"{self.family!r})\n"
            f"repro.testing.differential_compile(circuit, "
            f"strategies=[{self.strategy_key!r}], "
            f"devices=[{self.device_key!r}])"
        )

    def as_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["reproduction"] = self.reproduction()
        return payload


@dataclasses.dataclass
class FuzzReport:
    """Outcome of one fuzzing session."""

    circuits_checked: int
    compilations: int
    failures: list[FuzzFailure]
    elapsed_seconds: float
    budget_exhausted: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures

    def __bool__(self) -> bool:
        return self.ok

    def summary(self) -> str:
        verdict = "all equivalent" if self.ok else (
            f"{len(self.failures)} FAILING triple(s)"
        )
        budget = " (time budget exhausted)" if self.budget_exhausted else ""
        return (
            f"fuzz: {self.circuits_checked} circuits, "
            f"{self.compilations} compilations in "
            f"{self.elapsed_seconds:.1f}s{budget}: {verdict}"
        )


def run_fuzz(
    num_circuits: int = 25,
    seed: int = _DEFAULT_SEED,
    strategies: Sequence[str] | None = None,
    devices: Sequence[str] | None = None,
    families: Sequence[str] = CIRCUIT_FAMILIES,
    min_qubits: int = 2,
    max_qubits: int = 4,
    max_gates: int = 16,
    *,
    method: str = "auto",
    states: int = 6,
    time_budget_s: float | None = None,
    minimize: bool = True,
    fail_fast: bool = False,
    on_progress=None,
    executor: str = "serial",
    verify_ir: bool = False,
) -> FuzzReport:
    """Differentially fuzz the compiler with seeded random circuits.

    Args:
        num_circuits: Circuits to generate (round-robin over families,
            widths cycling through ``[min_qubits, max_qubits]``).
        seed: Master seed; circuit ``i`` uses ``seed + i``, so any
            failure reproduces from the numbers in its report.
        strategies: Strategy keys; default every registered strategy.
        devices: Device entries — a sizeable family name (``"ring"``,
            sized per circuit) or an exact preset key (``"ring-6"``);
            default :data:`DEFAULT_DEVICE_FAMILIES`.
        families / min_qubits / max_qubits / max_gates: Circuit recipe
            space.
        method / states: Equivalence-check configuration.
        time_budget_s: Wall-clock cap; generation stops (reported, not
            an error) once exceeded.
        minimize: Shrink each failing circuit to a minimal reproducer.
        fail_fast: Stop at the first failing circuit.
        on_progress: Optional callback ``(index, circuit, report)``.
        executor: ``"serial"`` (default) or ``"process"`` — the latter
            routes every compilation through the batch engine's
            process-executor path, so each job and result crosses the
            process boundary as a :mod:`repro.ir` wire payload and the
            fuzz session also exercises serialization end to end.
        verify_ir: Verify compiler IR between passes on every cell
            (:mod:`repro.analysis`), turning the session into a
            sanitizer run: an invariant break is attributed to the
            first pass that introduced it (rule ID + pass name in the
            failure detail) and then minimized like any other failure.

    Returns:
        A :class:`FuzzReport` (truthy iff no failures).
    """
    if num_circuits < 1:
        raise BenchmarkError("run_fuzz needs at least one circuit")
    if strategies is None:
        strategies = available_strategy_keys()
    if devices is None:
        devices = DEFAULT_DEVICE_FAMILIES
    started = time.perf_counter()
    cache = PulseCache()
    failures: list[FuzzFailure] = []
    compilations = 0
    checked = 0
    budget_exhausted = False
    widths = list(range(min_qubits, max_qubits + 1))
    for index in range(num_circuits):
        if (
            time_budget_s is not None
            and time.perf_counter() - started > time_budget_s
        ):
            budget_exhausted = True
            break
        family = families[index % len(families)]
        num_qubits = widths[index % len(widths)]
        circuit_seed = seed + index
        num_gates = max(1, max_gates - (index % 3) * (max_gates // 4))
        circuit = random_circuit(num_qubits, num_gates, circuit_seed, family)
        device_keys = _size_devices(devices, num_qubits)
        report = differential_compile(
            circuit,
            strategies=strategies,
            devices=device_keys,
            method=method,
            states=states,
            cache=cache,
            executor=executor,
            verify_ir=verify_ir,
        )
        checked += 1
        compilations += len(report.outcomes)
        if on_progress is not None:
            on_progress(index, circuit, report)
        for outcome in report.failures:
            failures.append(
                _build_failure(
                    circuit,
                    family,
                    circuit_seed,
                    num_gates,
                    outcome,
                    method=method,
                    states=states,
                    minimize=minimize,
                    verify_ir=verify_ir,
                )
            )
        if fail_fast and failures:
            break
    return FuzzReport(
        circuits_checked=checked,
        compilations=compilations,
        failures=failures,
        elapsed_seconds=time.perf_counter() - started,
        budget_exhausted=budget_exhausted,
    )


def _size_devices(devices: Sequence[str], num_qubits: int) -> list[str]:
    """Resolve family names per circuit width; pass exact keys through.

    Family entries go through :func:`default_device_presets`, which
    deduplicates isomorphic wirings (at width 3 the 1x3 grid *is* the
    line and the ring *is* all-to-all) and pads with larger
    ancilla-bearing targets so narrow circuits still see up to three
    distinct topologies.  Exact preset keys follow, unmodified.
    """
    families = [e for e in devices if e in SIZEABLE_DEVICE_FAMILIES]
    keys: list[str] = []
    if families:
        keys.extend(
            default_device_presets(
                num_qubits, families, minimum=min(3, len(families))
            )
        )
    keys.extend(e for e in devices if e not in SIZEABLE_DEVICE_FAMILIES)
    return keys


def _build_failure(
    circuit,
    family: str,
    seed: int,
    num_gates: int,
    outcome,
    *,
    method: str,
    states: int,
    minimize: bool,
    verify_ir: bool = False,
) -> FuzzFailure:
    minimized = circuit
    if minimize:
        def still_fails(candidate) -> bool:
            retry = differential_compile(
                candidate,
                strategies=[outcome.strategy_key],
                devices=[outcome.device_key],
                method=method,
                states=states,
                verify_ir=verify_ir,
            )
            return not retry.ok

        minimized = minimize_circuit(circuit, still_fails)
    detail = outcome.error
    if detail is None and outcome.report is not None:
        detail = (
            f"mismatch: max deviation {outcome.report.max_deviation:.3e}, "
            f"leakage {outcome.report.ancilla_leakage:.3e} "
            f"(atol {outcome.report.atol:g})"
        )
    return FuzzFailure(
        family=family,
        num_qubits=circuit.num_qubits,
        num_gates=num_gates,
        seed=seed,
        strategy_key=outcome.strategy_key,
        device_key=outcome.device_key,
        detail=detail or "unknown failure",
        minimized_gates=len(minimized.gates),
        minimized_qasm=circuit_to_qasm(minimized),
    )


def write_reproducer(report: FuzzReport, path: str) -> None:
    """Write a fuzz report's failures as a JSON artifact."""
    payload = {
        "circuits_checked": report.circuits_checked,
        "compilations": report.compilations,
        "elapsed_seconds": report.elapsed_seconds,
        "failures": [failure.as_dict() for failure in report.failures],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing",
        description=(
            "Differentially fuzz the compiler: seeded random circuits x "
            "every strategy x device presets, verified for semantic "
            "equivalence."
        ),
    )
    parser.add_argument("--circuits", type=int, default=25)
    parser.add_argument("--seed", type=int, default=_DEFAULT_SEED)
    parser.add_argument(
        "--strategies",
        default=None,
        help="comma-separated strategy keys (default: every registered)",
    )
    parser.add_argument(
        "--devices",
        default=None,
        help=(
            "comma-separated device families (sized per circuit) or "
            "exact preset keys; default: "
            + ",".join(DEFAULT_DEVICE_FAMILIES)
        ),
    )
    parser.add_argument(
        "--families", default=",".join(CIRCUIT_FAMILIES),
        help="comma-separated circuit families",
    )
    parser.add_argument("--min-qubits", type=int, default=2)
    parser.add_argument("--max-qubits", type=int, default=4)
    parser.add_argument("--max-gates", type=int, default=16)
    parser.add_argument("--states", type=int, default=6)
    parser.add_argument(
        "--method", default="auto",
        choices=("auto", "statevector", "unitary"),
    )
    parser.add_argument(
        "--executor", default="serial", choices=("serial", "process"),
        help="compile cells in-process, or through the batch engine's "
        "process workers (also exercises the repro.ir wire format)",
    )
    parser.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget; stops generating new circuits past it",
    )
    parser.add_argument(
        "--artifact", default=None, metavar="PATH",
        help="write minimized reproducers to this JSON file on failure",
    )
    parser.add_argument(
        "--verify-ir", action="store_true",
        help="verify compiler IR between passes on every compilation, "
        "attributing any invariant break to the pass that introduced it",
    )
    parser.add_argument("--no-minimize", action="store_true")
    parser.add_argument("--fail-fast", action="store_true")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    def on_progress(index, circuit, report):
        if not args.quiet:
            status = "ok" if report.ok else "FAIL"
            print(f"[{index + 1}/{args.circuits}] {circuit.name}: {status}")

    report = run_fuzz(
        num_circuits=args.circuits,
        seed=args.seed,
        strategies=args.strategies.split(",") if args.strategies else None,
        devices=args.devices.split(",") if args.devices else None,
        families=tuple(args.families.split(",")),
        min_qubits=args.min_qubits,
        max_qubits=args.max_qubits,
        max_gates=args.max_gates,
        method=args.method,
        states=args.states,
        time_budget_s=args.time_budget,
        minimize=not args.no_minimize,
        fail_fast=args.fail_fast,
        on_progress=on_progress,
        executor=args.executor,
        verify_ir=args.verify_ir,
    )
    print(report.summary())
    for failure in report.failures:
        print(
            f"\nFAILING TRIPLE: {failure.family}-q{failure.num_qubits}"
            f"-g{failure.num_gates}-s{failure.seed} under "
            f"{failure.strategy_key!r} on {failure.device_key!r}\n"
            f"  {failure.detail}\n"
            f"  minimized to {failure.minimized_gates} gate(s):\n"
            + "\n".join(
                "    " + line
                for line in failure.minimized_qasm.strip().splitlines()
            )
            + "\n  reproduce with:\n"
            + "\n".join("    " + line for line in failure.reproduction().splitlines())
        )
    if report.failures and args.artifact:
        write_reproducer(report, args.artifact)
        print(f"\nwrote reproducer artifact to {args.artifact}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
