"""Hypothesis strategies for circuits and devices.

Property tests draw whole compiler inputs from these strategies::

    from hypothesis import given
    from repro.testing import circuits, device_presets

    @given(circuit=circuits(max_qubits=4), device=device_presets(4, 6))
    def test_property(circuit, device): ...

Hypothesis is a test-time dependency only — the strategies are built
lazily so importing :mod:`repro.testing` never requires it; calling one
of these functions without hypothesis installed raises a clear
:class:`~repro.errors.BenchmarkError`.

Shrinking note: circuits are generated from a seeded recipe
``(family, width, gate count, seed)``, so hypothesis shrinks toward
narrower, shorter, lower-seed circuits; for a minimal *gate-level*
counterexample, feed the shrunken circuit to
:func:`repro.testing.differential.minimize_circuit`.
"""

from __future__ import annotations

from repro.device.topology import grid_for
from repro.errors import BenchmarkError
from repro.testing.generators import CIRCUIT_FAMILIES, random_circuit

#: Device families :func:`device_presets` can size to a qubit count.
SIZEABLE_DEVICE_FAMILIES: tuple[str, ...] = (
    "paper-grid",
    "line",
    "ring",
    "all-to-all",
)

_MAX_SEED = 2**32 - 1


def _hypothesis_strategies():
    try:
        from hypothesis import strategies as st
    except ImportError:  # pragma: no cover - exercised only without dev deps
        raise BenchmarkError(
            "repro.testing's hypothesis strategies need the 'hypothesis' "
            "package (a test-time dependency); install it or use "
            "repro.testing.generators directly"
        ) from None
    return st


def circuits(
    min_qubits: int = 1,
    max_qubits: int = 5,
    min_gates: int = 1,
    max_gates: int = 20,
    families: tuple[str, ...] = CIRCUIT_FAMILIES,
):
    """Strategy producing seeded random :class:`~repro.circuit.Circuit`\\ s.

    Draws a family, a width, a gate count and a generator seed, then
    builds the circuit through :func:`repro.testing.random_circuit`, so
    every example prints a reproducible recipe in its name.
    """
    st = _hypothesis_strategies()
    if not 1 <= min_qubits <= max_qubits:
        raise BenchmarkError(
            f"bad qubit range [{min_qubits}, {max_qubits}]"
        )
    if not 0 <= min_gates <= max_gates:
        raise BenchmarkError(f"bad gate range [{min_gates}, {max_gates}]")
    return st.builds(
        lambda family, n, gates, seed: random_circuit(n, gates, seed, family),
        st.sampled_from(families),
        st.integers(min_qubits, max_qubits),
        st.integers(min_gates, max_gates),
        st.integers(0, _MAX_SEED),
    )


def preset_key_for(family: str, num_qubits: int) -> str:
    """The preset key of ``family`` sized to hold ``num_qubits``.

    ``paper-grid`` becomes the near-square grid, ``ring`` is padded to
    its three-qubit minimum; ``heavy-hex`` is not sizeable (its qubit
    counts are lattice-determined) — sample ``heavy-hex-D`` directly.
    """
    if family == "paper-grid":
        grid = grid_for(num_qubits)
        return f"paper-grid-{grid.rows}x{grid.cols}"
    if family == "line":
        return f"line-{num_qubits}"
    if family == "ring":
        return f"ring-{max(num_qubits, 3)}"
    if family == "all-to-all":
        return f"all-to-all-{num_qubits}"
    raise BenchmarkError(
        f"cannot size device family {family!r}; "
        f"choose from {SIZEABLE_DEVICE_FAMILIES}"
    )


def device_presets(
    min_qubits: int = 2,
    max_qubits: int = 9,
    families: tuple[str, ...] = SIZEABLE_DEVICE_FAMILIES,
):
    """Strategy producing preset *keys* (``"ring-5"``, ``"line-3"``, ...).

    Every drawn key resolves to a device with at least ``min_qubits``
    cells, so any circuit of that width places onto it.
    """
    st = _hypothesis_strategies()
    if not 1 <= min_qubits <= max_qubits:
        raise BenchmarkError(
            f"bad qubit range [{min_qubits}, {max_qubits}]"
        )
    return st.builds(
        preset_key_for,
        st.sampled_from(families),
        st.integers(min_qubits, max_qubits),
    )


def devices(
    min_qubits: int = 2,
    max_qubits: int = 9,
    families: tuple[str, ...] = SIZEABLE_DEVICE_FAMILIES,
):
    """Strategy producing resolved :class:`~repro.device.Device` objects."""
    from repro.device.presets import device_by_key

    st = _hypothesis_strategies()
    return st.builds(
        device_by_key, device_presets(min_qubits, max_qubits, families)
    )
