"""Differential-testing toolkit: generators, strategies, fuzzing.

Public surface:

* :func:`~repro.testing.generators.random_circuit` and the per-family
  shorthands — seeded, fully reproducible random circuits.
* :func:`~repro.testing.strategies.circuits` /
  :func:`~repro.testing.strategies.device_presets` /
  :func:`~repro.testing.strategies.devices` — hypothesis strategies
  (hypothesis is required only when these are called).
* :func:`~repro.testing.differential.differential_compile` — one
  circuit under every strategy x device, all verified against the
  source semantics.
* :func:`~repro.testing.fuzz.run_fuzz` — the seeded fuzzing session the
  CI smoke job runs (``python -m repro.testing``), with failure
  minimization via
  :func:`~repro.testing.differential.minimize_circuit`.
"""

from repro.testing.differential import (
    DEFAULT_DEVICE_FAMILIES,
    CompileOutcome,
    DifferentialReport,
    default_device_presets,
    differential_compile,
    minimize_circuit,
)
from repro.testing.fuzz import FuzzFailure, FuzzReport, run_fuzz
from repro.testing.generators import (
    CIRCUIT_FAMILIES,
    diagonal_heavy_circuit,
    gate_soup_circuit,
    layered_circuit,
    random_circuit,
)
from repro.testing.strategies import (
    SIZEABLE_DEVICE_FAMILIES,
    circuits,
    device_presets,
    devices,
    preset_key_for,
)

__all__ = [
    "CIRCUIT_FAMILIES",
    "CompileOutcome",
    "DEFAULT_DEVICE_FAMILIES",
    "DifferentialReport",
    "FuzzFailure",
    "FuzzReport",
    "SIZEABLE_DEVICE_FAMILIES",
    "circuits",
    "default_device_presets",
    "device_presets",
    "devices",
    "diagonal_heavy_circuit",
    "differential_compile",
    "gate_soup_circuit",
    "layered_circuit",
    "minimize_circuit",
    "preset_key_for",
    "random_circuit",
    "run_fuzz",
]
