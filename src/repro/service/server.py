"""Compilation-as-a-service: the resident compile server.

One process owns one warm :class:`~repro.compiler.batch.BatchCompiler`
(and therefore one shared pulse cache — local, sharded-dir, or a
``tcp://`` fleet cache) and serves compile jobs submitted over the wire
(:mod:`repro.service.protocol`).  Submissions land on a bounded queue
with explicit backpressure; worker threads drain it through
:meth:`BatchCompiler.run_job`; finished artifacts are persisted and
served back.  Robustness features:

* **Backpressure** — a full queue rejects instantly with a
  ``retry_after`` derived from observed job times, never parks a client.
* **Per-job timeout + cancellation** — cooperative, at pass boundaries;
  partial optimal-control work stays in the warm cache.
* **Circuit breaker** — a job signature that fails ``threshold`` times
  in a row is quarantined (:mod:`repro.service.breaker`) so one
  poisoned circuit cannot wedge the worker pool.
* **Crash-safe journal** — every accepted job and state transition is
  journaled atomically (:mod:`repro.service.journal`); a restarted
  server re-serves completed artifacts and re-runs interrupted jobs
  against the still-warm cache (zero re-synthesis for cached pulses).

Embed it (tests, examples)::

    service = CompileService(engine=BatchCompiler(...), workers=2)
    service.start()
    ... ServiceClient(service.url) ...
    service.stop()

or run it standalone with ``python -m repro.service``.
"""

from __future__ import annotations

import hashlib
import json
import socketserver
import threading
import time

from repro.compiler.batch import _COUNTER_KEYS, BatchCompiler
from repro.errors import JobCancelledError, ReproError, ServiceError
from repro.service.breaker import (
    DEFAULT_BREAKER_COOLDOWN,
    DEFAULT_BREAKER_THRESHOLD,
    CircuitBreaker,
)
from repro.service.journal import JobJournal
from repro.service.protocol import (
    REJECT_QUARANTINED,
    REJECT_QUEUE_FULL,
    SERVICE_FORMAT,
    SERVICE_OPS,
    reachable_host,
    recv_message,
    send_message,
)
from repro.service.queue import BoundedJobQueue

#: Default bound on queued (not yet running) jobs.
DEFAULT_QUEUE_LIMIT = 64

#: ``retry_after`` hints are clamped into this range (seconds): never so
#: small that clients hammer a loaded server, never so large that a
#: briefly-full queue strands them.
MIN_RETRY_AFTER = 0.5
MAX_RETRY_AFTER = 60.0

#: Seed for the completed-job-seconds EWMA before any job finishes.
_INITIAL_JOB_SECONDS = 1.0
_EWMA_WEIGHT = 0.3

#: Worker poll granularity; also bounds stop() latency for idle workers.
_TAKE_TIMEOUT_SECONDS = 0.2


def job_signature(envelope: dict) -> str:
    """Content digest of one job envelope, ignoring its display label.

    Two submissions of the same circuit/strategy/device share a
    signature even under different labels — that is the identity the
    circuit breaker quarantines on (a poisoned circuit resubmitted under
    a fresh name is still poisoned).
    """
    payload = {k: v for k, v in envelope.items() if k != "label"}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class _JobRecord:
    """Everything the server tracks for one submitted job."""

    __slots__ = (
        "job_id",
        "serial",
        "envelope",
        "signature",
        "label",
        "state",
        "submitted_at",
        "started_at",
        "finished_at",
        "attempts",
        "error",
        "seconds",
        "pass_seconds",
        "counters",
        "cancel_event",
        "cancel_reason",
    )

    def __init__(self, job_id: str, serial: int, envelope: dict, signature: str):
        self.job_id = job_id
        self.serial = serial
        self.envelope = envelope
        self.signature = signature
        self.label = envelope.get("label") or None
        self.state = "queued"
        self.submitted_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.attempts = 0
        self.error: str | None = None
        self.seconds: float | None = None
        self.pass_seconds: dict[str, float] | None = None
        self.counters: dict[str, int] | None = None
        self.cancel_event = threading.Event()
        self.cancel_reason: str | None = None

    def status(self) -> dict:
        """The wire-facing status payload (flat JSON-safe scalars)."""
        status = {
            "job_id": self.job_id,
            "state": self.state,
            "signature": self.signature,
            "label": self.label,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "error": self.error,
            "seconds": self.seconds,
        }
        if self.pass_seconds is not None:
            status["pass_seconds"] = dict(self.pass_seconds)
        if self.counters is not None:
            status["counters"] = dict(self.counters)
        return status

    def journal_record(self) -> dict:
        return {
            "job_id": self.job_id,
            "serial": self.serial,
            "state": self.state,
            "job": self.envelope,
            "signature": self.signature,
            "label": self.label,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "error": self.error,
        }


class _Handler(socketserver.BaseRequestHandler):
    """One connection: a stream of request frames until EOF."""

    def handle(self) -> None:
        server: _TCPServer = self.server  # type: ignore[assignment]
        while True:
            try:
                request = recv_message(self.request)
            except Exception:
                return  # torn frame / reset: drop the connection
            if request is None:
                return
            try:
                response = server.service.dispatch(request)
            except Exception as error:  # never kill the server thread
                server.service.record_error()
                response = {"ok": False, "error": f"{type(error).__name__}: {error}"}
            try:
                send_message(self.request, response)
            except OSError:
                return


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    service: CompileService


class CompileService:
    """The compile server: engine + queue + breaker + journal + wire.

    Args:
        engine: The resident :class:`BatchCompiler` (its cache is the
            service's warm cache).  A default engine when omitted.
        host / port: Bind address; port 0 picks a free port (read it
            back from :attr:`url`).
        queue_limit: Queued-job bound; submissions past it are rejected
            with backpressure.  ``None`` disables the bound.
        workers: Compile worker threads.  ``0`` is allowed — jobs then
            queue without running, which tests use to pin queue states
            deterministically.
        job_timeout: Per-job wall-clock budget, seconds; a job past it
            is cancelled at the next pass boundary and counts as a
            breaker failure.  ``None`` disables the timeout.
        breaker_threshold / breaker_cooldown: Circuit-breaker tuning
            (consecutive failures to quarantine a signature; quarantine
            seconds before a probe).
        journal: A :class:`JobJournal` (or a directory path for one) for
            crash-safe restarts; ``None`` keeps state in memory only.
    """

    def __init__(
        self,
        engine: BatchCompiler | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_limit: int | None = DEFAULT_QUEUE_LIMIT,
        workers: int = 2,
        job_timeout: float | None = None,
        breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
        breaker_cooldown: float = DEFAULT_BREAKER_COOLDOWN,
        journal: JobJournal | str | None = None,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.engine = engine if engine is not None else BatchCompiler()
        self.queue = BoundedJobQueue(limit=queue_limit)
        self.breaker = CircuitBreaker(
            threshold=breaker_threshold, cooldown=breaker_cooldown
        )
        self.journal = (
            JobJournal(journal) if isinstance(journal, str) else journal
        )
        self.workers = workers
        self.job_timeout = job_timeout
        self.started_at = time.time()
        self.op_counts: dict[str, int] = dict.fromkeys(SERVICE_OPS, 0)
        self.errors = 0
        #: Same discipline as the cache server: counters are bumped from
        #: handler threads, so every read-modify-write takes this lock.
        self._counter_lock = threading.Lock()
        #: Guards the record table, job-id serial, and the EWMA.
        self._lock = threading.Lock()
        self._records: dict[str, _JobRecord] = {}
        self._results: dict[str, object] = {}
        #: Signature -> job_id of the latest successfully completed job
        #: with that signature: repeat submissions are answered ``done``
        #: from its artifact without touching the queue.
        self._done_by_signature: dict[str, str] = {}
        #: Signature -> job_id of the queued/running job concurrent
        #: identical submissions coalesce onto (their "primary").
        self._inflight_by_signature: dict[str, str] = {}
        #: Primary job_id -> follower job_ids resolved when it finishes.
        self._followers: dict[str, list[str]] = {}
        self._next_serial = 1
        self._ewma_job_seconds = _INITIAL_JOB_SECONDS
        self._stopping = threading.Event()
        self._worker_threads: list[threading.Thread] = []
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.timed_out = 0
        self.rejected_busy = 0
        self.rejected_quarantined = 0
        self.resumed = 0
        self.result_cache_hits = 0
        self.result_cache_misses = 0
        self.coalesced = 0
        self._tcp = _TCPServer((host, port), _Handler)
        self._tcp.service = self
        self._serve_thread: threading.Thread | None = None
        if self.journal is not None:
            self._recover()

    # -- lifecycle -------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        return self._tcp.server_address[:2]

    @property
    def url(self) -> str:
        """A connectable ``host:port`` (wildcard binds -> loopback)."""
        host, port = self.address
        return f"{reachable_host(host)}:{port}"

    def start(self) -> CompileService:
        """Serve requests and start workers; returns self for chaining."""
        self._serve_thread = threading.Thread(
            target=self._tcp.serve_forever, name="compile-service", daemon=True
        )
        self._serve_thread.start()
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"compile-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._worker_threads.append(thread)
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI path); workers still spawn."""
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"compile-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._worker_threads.append(thread)
        self._tcp.serve_forever()

    def stop(self) -> None:
        """Drain admissions, stop workers, persist the cache.

        Queued jobs are *not* abandoned: they stay journaled as queued,
        so the next start resumes them.  A running job finishes its
        current pass, is cancelled cooperatively, and is re-journaled as
        queued for the restart (its finished optimal-control work is
        already in the cache).
        """
        self._stopping.set()
        self.queue.close()
        self._tcp.shutdown()
        self._tcp.server_close()
        for thread in self._worker_threads:
            thread.join(timeout=10)
        self._worker_threads.clear()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5)
            self._serve_thread = None
        self.engine.save_cache()

    def __enter__(self) -> CompileService:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- restart recovery ------------------------------------------------

    def _recover(self) -> None:
        """Rebuild the record table from the journal; re-enqueue work.

        Completed jobs come back as ``done`` records served from their
        persisted artifacts.  Queued/running jobs (the previous process
        died holding them) are re-enqueued — ``force=True`` so a backlog
        larger than the queue limit is never stranded — with ``running``
        ones charged one attempt for the run that died.
        """
        resumable_ids = {r["job_id"] for r in self.journal.resumable()}
        for stored in sorted(
            self.journal.records(), key=lambda r: r.get("serial", 0)
        ):
            record = _JobRecord(
                stored["job_id"],
                stored.get("serial", 0),
                stored["job"],
                stored.get("signature") or job_signature(stored["job"]),
            )
            record.state = stored["state"]
            record.submitted_at = stored.get("submitted_at", record.submitted_at)
            record.started_at = stored.get("started_at")
            record.finished_at = stored.get("finished_at")
            record.attempts = stored.get("attempts", 0)
            record.error = stored.get("error")
            if record.job_id in resumable_ids:
                if record.state == "running":
                    record.attempts += 1
                record.state = "queued"
                record.started_at = None
                record.error = None
                self._journal(record)
                self.queue.offer(record.job_id, force=True)
                self.resumed += 1
                # First resumable job with a signature becomes the
                # coalescing primary for post-restart resubmissions.
                self._inflight_by_signature.setdefault(
                    record.signature, record.job_id
                )
            if record.state == "done":
                # Serial order: the latest completed job wins, and its
                # persisted artifact answers repeat submissions.
                self._done_by_signature[record.signature] = record.job_id
            self._records[record.job_id] = record
            self._next_serial = max(self._next_serial, record.serial + 1)

    # -- workers ---------------------------------------------------------

    def _worker_loop(self) -> None:
        while not self._stopping.is_set():
            job_id = self.queue.take(timeout=_TAKE_TIMEOUT_SECONDS)
            if job_id is None:
                if self.queue.closed:
                    return
                continue
            with self._lock:
                record = self._records.get(job_id)
            if record is None or record.state != "queued":
                continue  # cancelled (or otherwise resolved) while queued
            self._run_record(record)

    def _run_record(self, record: _JobRecord) -> None:
        from repro.ir.serialize import batch_job_from_dict

        with self._lock:
            record.state = "running"
            record.started_at = time.time()
            record.attempts += 1
            record.error = None
        self._journal(record)
        deadline = (
            time.monotonic() + self.job_timeout
            if self.job_timeout is not None
            else None
        )

        def _cancel_probe() -> str | None:
            if self._stopping.is_set():
                return "server shutting down"
            if record.cancel_event.is_set():
                return "cancelled by client"
            if deadline is not None and time.monotonic() > deadline:
                record.cancel_reason = "timeout"
                return f"timed out after {self.job_timeout}s"
            return None

        try:
            job = batch_job_from_dict(record.envelope)
            result, seconds, counters = self.engine.run_job(
                job, cancel=_cancel_probe
            )
        except JobCancelledError as error:
            self._finish_cancelled(record, error)
            return
        except ReproError as error:
            self._finish_failed(record, f"{type(error).__name__}: {error}")
            return
        except Exception as error:  # defensive: foreign bug, same handling
            self._finish_failed(record, f"{type(error).__name__}: {error}")
            return
        if self.journal is not None:
            # Artifact before state flip: a crash between the two leaves
            # a resumable "running" record, never a done-but-missing one.
            self.journal.write_result(record.job_id, result)
        with self._lock:
            self._results[record.job_id] = result
            record.state = "done"
            record.finished_at = time.time()
            record.seconds = seconds
            record.pass_seconds = dict(result.pass_seconds)
            record.counters = dict(counters)
            self.completed += 1
            self._ewma_job_seconds = (
                _EWMA_WEIGHT * seconds
                + (1.0 - _EWMA_WEIGHT) * self._ewma_job_seconds
            )
            self._done_by_signature[record.signature] = record.job_id
            if (
                self._inflight_by_signature.get(record.signature)
                == record.job_id
            ):
                del self._inflight_by_signature[record.signature]
            followers = self._followers.pop(record.job_id, [])
        self.breaker.record_success(record.signature)
        self._journal(record)
        self._resolve_followers_done(followers, result)

    def _resolve_followers_done(self, followers: list[str], result) -> None:
        """Fan a finished primary's result out to its coalesced riders.

        Each still-queued follower becomes ``done`` sharing the primary's
        result object (results are immutable to the service; clients get
        independent deserialized copies over the wire) with zero seconds
        and all-zero counters — no pass ran for it.  Followers a client
        cancelled in the meantime are left alone.
        """
        for job_id in followers:
            with self._lock:
                follower = self._records.get(job_id)
                if follower is None or follower.state != "queued":
                    continue
            if self.journal is not None:
                self.journal.write_result(job_id, result)
            with self._lock:
                if follower.state != "queued":
                    continue  # cancelled between the two critical sections
                self._results[job_id] = result
                follower.state = "done"
                follower.finished_at = time.time()
                follower.seconds = 0.0
                follower.pass_seconds = dict(result.pass_seconds)
                follower.counters = dict.fromkeys(_COUNTER_KEYS, 0)
            self._journal(follower)

    def _finish_cancelled(self, record: _JobRecord, error: Exception) -> None:
        """Route a JobCancelledError to its real cause.

        Three distinct causes share the exception type: a client
        ``cancel`` (-> cancelled, no breaker change), the per-job
        timeout (-> failed + breaker: a circuit that blows the budget
        every time is poisoned), and server shutdown (-> back to queued
        for the restart; the pass that finished stayed warm).
        """
        if self._stopping.is_set() and not record.cancel_event.is_set():
            with self._lock:
                record.state = "queued"
                record.started_at = None
            self._journal(record)
            return
        if record.cancel_reason == "timeout":
            with self._lock:
                self.timed_out += 1
            self._finish_failed(record, str(error))
            return
        with self._lock:
            record.state = "cancelled"
            record.finished_at = time.time()
            record.error = str(error)
            self.cancelled += 1
        self._journal(record)
        self._promote_followers(record)

    def _finish_failed(self, record: _JobRecord, error: str) -> None:
        with self._lock:
            record.state = "failed"
            record.finished_at = time.time()
            record.error = error
            self.failed += 1
            if (
                self._inflight_by_signature.get(record.signature)
                == record.job_id
            ):
                del self._inflight_by_signature[record.signature]
            followers = self._followers.pop(record.job_id, [])
        self.breaker.record_failure(record.signature)
        self._journal(record)
        # A follower is the same job by construction, so the failure is
        # its failure too (one breaker strike only, though — the pool
        # compiled the circuit once).
        for job_id in followers:
            with self._lock:
                follower = self._records.get(job_id)
                if follower is None or follower.state != "queued":
                    continue
                follower.state = "failed"
                follower.finished_at = time.time()
                follower.error = error
                self.failed += 1
            self._journal(follower)

    def _promote_followers(self, record: _JobRecord) -> None:
        """A cancelled primary hands its slot to the first live follower.

        The promoted job enters the real queue (``force=True``: it was
        already admitted once) and inherits the remaining followers; with
        no live follower the signature simply leaves the in-flight index.
        """
        with self._lock:
            followers = self._followers.pop(record.job_id, [])
            if (
                self._inflight_by_signature.get(record.signature)
                == record.job_id
            ):
                del self._inflight_by_signature[record.signature]
            new_primary = None
            remaining = []
            for job_id in followers:
                follower = self._records.get(job_id)
                if follower is None or follower.state != "queued":
                    continue
                if new_primary is None:
                    new_primary = job_id
                else:
                    remaining.append(job_id)
            if new_primary is not None:
                self._inflight_by_signature[record.signature] = new_primary
                if remaining:
                    self._followers[new_primary] = remaining
        if new_primary is not None:
            self.queue.offer(new_primary, force=True)

    def _journal(self, record: _JobRecord) -> None:
        if self.journal is not None:
            self.journal.record(record.journal_record())

    # -- request dispatch ------------------------------------------------

    def record_error(self) -> None:
        """Count one failed request (unknown op or raised dispatch)."""
        with self._counter_lock:
            self.errors += 1

    def dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op not in SERVICE_OPS:
            self.record_error()
            return {"ok": False, "error": f"unknown op {op!r}; known: {SERVICE_OPS}"}
        with self._counter_lock:
            self.op_counts[op] += 1
        return getattr(self, f"_op_{op}")(request)

    def _op_ping(self, request: dict) -> dict:
        return {"ok": True, "format": SERVICE_FORMAT}

    def _retry_after(self) -> float:
        """Backpressure hint: EWMA job seconds x backlog per worker."""
        with self._lock:
            per_job = self._ewma_job_seconds
        backlog = len(self.queue) + self._in_flight() + 1
        hint = per_job * backlog / max(self.workers, 1)
        return max(MIN_RETRY_AFTER, min(hint, MAX_RETRY_AFTER))

    def _in_flight(self) -> int:
        with self._lock:
            return sum(
                1 for r in self._records.values() if r.state == "running"
            )

    def _op_submit(self, request: dict) -> dict:
        from repro.ir.serialize import batch_job_from_dict

        envelope = request.get("job")
        if not isinstance(envelope, dict):
            raise ServiceError("submit needs a job envelope under 'job'")
        # Validate eagerly so a malformed submission fails its submitter,
        # not a worker thread minutes later.
        batch_job_from_dict(envelope)
        signature = job_signature(envelope)
        allowed, retry_after = self.breaker.allow(signature)
        if not allowed:
            with self._counter_lock:
                self.rejected_quarantined += 1
            return {
                "ok": True,
                "accepted": False,
                "reason": REJECT_QUARANTINED,
                "retry_after": retry_after,
                "signature": signature,
                "breaker_state": self.breaker.state_of(signature),
            }
        # Warm path 1: a completed job with this signature already has a
        # persisted artifact — answer done instantly, zero compilation.
        served = self._serve_from_done(envelope, signature)
        if served is not None:
            return served
        with self._lock:
            serial = self._next_serial
            self._next_serial += 1
            job_id = f"job-{serial}-{signature[:8]}"
            record = _JobRecord(job_id, serial, envelope, signature)
            # Warm path 2: an identical job is queued/running right now
            # — ride along as a follower instead of queueing twice.
            primary_id = self._inflight_by_signature.get(signature)
            primary = self._records.get(primary_id) if primary_id else None
            if primary is not None and primary.state in ("queued", "running"):
                self._records[job_id] = record
                self._followers.setdefault(primary_id, []).append(job_id)
                coalesced_onto = primary_id
            else:
                coalesced_onto = None
        if coalesced_onto is not None:
            with self._counter_lock:
                self.coalesced += 1
            self._journal(record)
            return {
                "ok": True,
                "accepted": True,
                "job_id": job_id,
                "state": record.state,
                "position": len(self.queue),
                "coalesced_with": coalesced_onto,
            }
        with self._lock:
            self._records[job_id] = record
        if not self.queue.offer(job_id):
            with self._lock:
                del self._records[job_id]
            with self._counter_lock:
                self.rejected_busy += 1
            return {
                "ok": True,
                "accepted": False,
                "reason": REJECT_QUEUE_FULL,
                "retry_after": self._retry_after(),
                "queue_depth": len(self.queue),
                "queue_limit": self.queue.limit,
            }
        with self._lock:
            self._inflight_by_signature[signature] = job_id
        with self._counter_lock:
            self.result_cache_misses += 1
        self._journal(record)
        return {
            "ok": True,
            "accepted": True,
            "job_id": job_id,
            "state": record.state,
            "position": len(self.queue),
        }

    def _serve_from_done(self, envelope: dict, signature: str) -> dict | None:
        """Answer a repeat submission from a completed job's artifact.

        Returns the submit response (a fresh job record born ``done``,
        sharing the prior result) or None when no completed job with
        this signature — or no retrievable artifact — exists, in which
        case the submission takes the normal queue path.
        """
        with self._lock:
            done_id = self._done_by_signature.get(signature)
            result = self._results.get(done_id) if done_id else None
        if done_id is None:
            return None
        if result is None and self.journal is not None:
            result = self.journal.read_result(done_id)
        if result is None:
            return None
        lookup_started = time.time()
        with self._lock:
            serial = self._next_serial
            self._next_serial += 1
            job_id = f"job-{serial}-{signature[:8]}"
            record = _JobRecord(job_id, serial, envelope, signature)
            self._records[job_id] = record
        if self.journal is not None:
            # Same artifact-before-state-flip discipline as _run_record.
            self.journal.write_result(job_id, result)
        with self._lock:
            self._results[job_id] = result
            record.state = "done"
            record.finished_at = time.time()
            record.seconds = time.time() - lookup_started
            record.pass_seconds = dict(result.pass_seconds)
            record.counters = dict.fromkeys(_COUNTER_KEYS, 0)
            self._done_by_signature[signature] = job_id
        with self._counter_lock:
            self.result_cache_hits += 1
        self._journal(record)
        return {
            "ok": True,
            "accepted": True,
            "job_id": job_id,
            "state": "done",
            "position": len(self.queue),
            "served_from": done_id,
        }

    def _record_or_raise(self, request: dict) -> _JobRecord:
        job_id = request.get("job_id")
        with self._lock:
            record = self._records.get(job_id)
        if record is None:
            raise ServiceError(f"unknown job id {job_id!r}")
        return record

    def _op_status(self, request: dict) -> dict:
        from repro.ir.serialize import job_status_to_dict

        record = self._record_or_raise(request)
        with self._lock:
            status = record.status()
        return {"ok": True, "status": job_status_to_dict(status)}

    def _op_result(self, request: dict) -> dict:
        from repro.ir.serialize import result_to_dict

        record = self._record_or_raise(request)
        with self._lock:
            state = record.state
            result = self._results.get(record.job_id)
        if state != "done":
            return {
                "ok": True,
                "ready": False,
                "state": state,
                "error": record.error,
            }
        if result is None and self.journal is not None:
            # A restarted server serves pre-restart results from disk.
            result = self.journal.read_result(record.job_id)
            if result is not None:
                with self._lock:
                    self._results[record.job_id] = result
        if result is None:
            raise ServiceError(
                f"job {record.job_id!r} is done but its artifact is gone "
                f"(journal disabled or artifact deleted); resubmit"
            )
        return {
            "ok": True,
            "ready": True,
            "result": result_to_dict(result, include_source=True),
        }

    def _op_cancel(self, request: dict) -> dict:
        record = self._record_or_raise(request)
        record.cancel_event.set()
        with self._lock:
            if record.state == "queued":
                # Worker-side take() skips non-queued records, so this
                # resolves the job without waiting for a worker.
                record.state = "cancelled"
                record.finished_at = time.time()
                record.error = "cancelled while queued"
                self.cancelled += 1
                resolved_now = True
            else:
                resolved_now = record.state in ("done", "failed", "cancelled")
            state = record.state
        if state == "cancelled":
            self._journal(record)
            self._promote_followers(record)
        return {"ok": True, "state": state, "resolved": resolved_now}

    def _op_jobs(self, request: dict) -> dict:
        from repro.ir.serialize import job_status_to_dict

        with self._lock:
            records = sorted(self._records.values(), key=lambda r: r.serial)
            statuses = [record.status() for record in records]
        return {
            "ok": True,
            "jobs": [job_status_to_dict(status) for status in statuses],
        }

    def _op_stats(self, request: dict) -> dict:
        from repro.ir.serialize import service_stats_to_dict

        return {"ok": True, "stats": service_stats_to_dict(self.stats())}

    # -- metrics ---------------------------------------------------------

    def stats(self) -> dict:
        """Service metrics: queue, workers, breaker, journal, cache."""
        with self._counter_lock:
            requests = {k: v for k, v in self.op_counts.items() if v}
            errors = self.errors
            rejected_busy = self.rejected_busy
            rejected_quarantined = self.rejected_quarantined
            result_cache_hits = self.result_cache_hits
            result_cache_misses = self.result_cache_misses
            coalesced = self.coalesced
        with self._lock:
            states: dict[str, int] = {}
            for record in self._records.values():
                states[record.state] = states.get(record.state, 0) + 1
            ewma = self._ewma_job_seconds
        return {
            "format": SERVICE_FORMAT,
            "uptime_seconds": time.time() - self.started_at,
            "workers": self.workers,
            "job_timeout": self.job_timeout,
            "queue": self.queue.stats(),
            "jobs": states,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "timed_out": self.timed_out,
            "resumed": self.resumed,
            "rejected_busy": rejected_busy,
            "rejected_quarantined": rejected_quarantined,
            "ewma_job_seconds": ewma,
            "requests": requests,
            "request_errors": errors,
            "breaker": self.breaker.stats(),
            "journal_jobs": len(self.journal) if self.journal else 0,
            "cache": self.engine.cache_stats(),
            "coalesced_submissions": coalesced,
            "result_cache": self._result_cache_stats(
                result_cache_hits, result_cache_misses
            ),
        }

    def _result_cache_stats(self, hits: int, misses: int) -> dict:
        """The service-level warm-path counters, plus the engine's own
        result-cache store stats when one is attached.  ``completed``
        deliberately excludes served/coalesced jobs, so "second pass did
        zero compilations" is a pure counter assertion."""
        stats = {"hits": hits, "misses": misses}
        engine_stats = self.engine.result_cache_stats()
        if engine_stats is not None:
            stats["engine"] = engine_stats
        return stats
