"""Wire protocol of the compile service.

The service speaks the cache protocol's transport — 4-byte big-endian
length prefix, UTF-8 JSON object per frame, many frames per connection
(:mod:`repro.control.cache.protocol`) — with its own op vocabulary and
format tag, so one fleet deployment reuses one framing codebase, one
firewall story, and one debugging toolset for both servers.

Requests are ``{"op": <name>, ...}``; responses always carry ``"ok"``.
``ok: false`` means the *request* failed (malformed payload, unknown op,
unknown job id).  Flow-control outcomes are not errors: a rejected
submission answers ``ok: true, accepted: false`` with a machine-readable
``reason`` and a ``retry_after`` hint, because "the queue is full" is
the protocol working, not breaking.

Ops
===

=========  ==========================================================
``ping``     Liveness + format handshake.
``submit``   One ``repro-ir-v1`` job envelope -> ``job_id`` (accepted)
             or backpressure/quarantine rejection (``accepted: false``,
             ``reason`` of ``"queue_full"`` / ``"quarantined"``,
             ``retry_after`` seconds).
``status``   One job's lifecycle record (state ``queued`` / ``running``
             / ``done`` / ``failed`` / ``cancelled``, timestamps,
             attempts, error text, per-pass timing) as a
             ``repro-ir-v1`` ``job_status`` envelope.
``result``   The finished artifact: ``ready: true`` plus the serialized
             :class:`~repro.compiler.result.CompilationResult`, or
             ``ready: false`` plus the current state (and error text
             for failed/cancelled jobs).
``cancel``   Cooperative cancellation: queued jobs cancel immediately,
             running jobs stop at the next pass boundary.
``jobs``     Status envelopes for every job the server knows.
``stats``    Service metrics (queue, workers, breaker, journal, cache)
             as a ``repro-ir-v1`` ``service_stats`` envelope.
=========  ==========================================================
"""

from __future__ import annotations

from repro.control.cache.protocol import (  # noqa: F401  (re-exports)
    ProtocolError,
    reachable_host,
    recv_message,
    send_message,
)

#: Format tag answered by ``ping`` and checked by clients: bump on any
#: incompatible change to the op vocabulary or response shapes.
SERVICE_FORMAT = "repro-service-wire-v1"

#: The op vocabulary, in the order of the table above.
SERVICE_OPS = (
    "ping",
    "submit",
    "status",
    "result",
    "cancel",
    "jobs",
    "stats",
)

#: Machine-readable ``reason`` values on ``accepted: false`` responses.
REJECT_QUEUE_FULL = "queue_full"
REJECT_QUARANTINED = "quarantined"

__all__ = [
    "REJECT_QUARANTINED",
    "REJECT_QUEUE_FULL",
    "SERVICE_FORMAT",
    "SERVICE_OPS",
    "ProtocolError",
    "reachable_host",
    "recv_message",
    "send_message",
]
