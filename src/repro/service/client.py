"""Client side of the compile service.

:class:`ServiceClient` wraps the wire protocol in a job-shaped API:
submit circuits (or prebuilt :class:`~repro.compiler.batch.BatchJob`
payloads), poll status, download finished
:class:`~repro.compiler.result.CompilationResult` artifacts.  Transport
mirrors :class:`~repro.control.cache.client.RemotePulseCache`: one
socket, one lock around each round trip, one silent reconnect on a
dropped connection — which is exactly what rides out a server restart
mid-session.

Backpressure is surfaced as :class:`~repro.errors.ServiceBusyError`
(with the server's ``retry_after`` hint) rather than a generic failure,
so callers can tell "try again shortly" from "this job is broken";
:meth:`ServiceClient.submit_retrying` implements the obvious honor-the-
hint retry loop.
"""

from __future__ import annotations

import contextlib
import socket
import threading
import time

from repro.errors import ServiceBusyError, ServiceError
from repro.service.protocol import (
    SERVICE_FORMAT,
    ProtocolError,
    recv_message,
    send_message,
)

#: Default seconds between status polls in :meth:`ServiceClient.wait`.
DEFAULT_POLL_SECONDS = 0.1


def parse_service_url(url: str) -> tuple[str, int]:
    """``host:port`` or ``tcp://host:port`` -> (host, port)."""
    from repro.control.cache.client import parse_cache_url

    return parse_cache_url(url)


class ServiceClient:
    """One connection to a compile service.

    Args:
        url: Server address, ``host:port`` or ``tcp://host:port``.
        timeout: Socket timeout per round trip, seconds.
    """

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        self.url = url
        self.host, self.port = parse_service_url(url)
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._io_lock = threading.Lock()

    # -- transport -------------------------------------------------------

    def _connect(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        return self._sock

    def _request(self, payload: dict) -> dict:
        """One round trip; reconnects once on a dropped connection."""
        with self._io_lock:
            for attempt in (0, 1):
                sock = self._connect()
                try:
                    send_message(sock, payload)
                    response = recv_message(sock)
                    if response is None:
                        raise ProtocolError("server closed the connection")
                    break
                except (OSError, ProtocolError):
                    self._drop_connection()
                    if attempt:
                        raise
        if not response.get("ok"):
            raise ServiceError(
                f"compile service {self.url}: "
                f"{response.get('error', 'unknown error')}"
            )
        return response

    def _drop_connection(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            with contextlib.suppress(OSError):
                sock.close()

    def close(self) -> None:
        with self._io_lock:
            self._drop_connection()

    def __enter__(self) -> ServiceClient:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- ops -------------------------------------------------------------

    def ping(self) -> str:
        """Liveness check; returns the server's wire-format tag."""
        response = self._request({"op": "ping"})
        tag = response.get("format")
        if tag != SERVICE_FORMAT:
            raise ServiceError(
                f"{self.url} speaks {tag!r}, this client {SERVICE_FORMAT!r}"
            )
        return tag

    def submit(self, circuit, strategy="isa", **job_kwargs) -> str:
        """Submit one circuit for compilation; returns its job id.

        ``strategy`` and the remaining keywords are
        :class:`~repro.compiler.batch.BatchJob` fields (``width_limit``,
        ``label``, ``device``, ...).  Raises
        :class:`~repro.errors.ServiceBusyError` on backpressure or
        quarantine.
        """
        from repro.compiler.batch import BatchJob

        return self.submit_job(
            BatchJob(circuit=circuit, strategy=strategy, **job_kwargs)
        )

    def submit_job(self, job) -> str:
        """Submit one :class:`BatchJob` (or its envelope dict)."""
        from repro.ir.serialize import batch_job_to_dict

        envelope = job if isinstance(job, dict) else batch_job_to_dict(job)
        response = self._request({"op": "submit", "job": envelope})
        if not response.get("accepted"):
            reason = response.get("reason", "busy")
            retry_after = float(response.get("retry_after") or 1.0)
            raise ServiceBusyError(
                f"compile service {self.url} rejected the submission "
                f"({reason}); retry in {retry_after:.1f}s",
                retry_after=retry_after,
                reason=reason,
            )
        return response["job_id"]

    def submit_retrying(
        self, job, max_wait: float = 120.0
    ) -> str:
        """Submit, honoring backpressure hints until ``max_wait`` runs out."""
        deadline = time.monotonic() + max_wait
        while True:
            try:
                return self.submit_job(job)
            except ServiceBusyError as busy:
                wait = busy.retry_after or 1.0
                if time.monotonic() + wait > deadline:
                    raise
                time.sleep(wait)

    def status(self, job_id: str) -> dict:
        """One job's lifecycle record (state, timestamps, timings)."""
        from repro.ir.serialize import job_status_from_dict

        response = self._request({"op": "status", "job_id": job_id})
        return job_status_from_dict(response["status"])

    def result(self, job_id: str):
        """The finished :class:`CompilationResult`, or ``None`` if not done.

        Raises :class:`ServiceError` when the job failed or was
        cancelled — not-ready-yet and never-will-be are different
        answers.
        """
        from repro.ir.serialize import result_from_dict

        response = self._request({"op": "result", "job_id": job_id})
        if not response["ready"]:
            state = response.get("state")
            if state in ("failed", "cancelled"):
                raise ServiceError(
                    f"job {job_id} {state}: {response.get('error')}"
                )
            return None
        return result_from_dict(response["result"])

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll: float = DEFAULT_POLL_SECONDS,
    ):
        """Poll until done and return the result; raise on failure/timeout."""
        deadline = time.monotonic() + timeout
        while True:
            result = self.result(job_id)  # raises on failed/cancelled
            if result is not None:
                return result
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"job {job_id} still {self.status(job_id)['state']} "
                    f"after {timeout}s"
                )
            time.sleep(poll)

    def cancel(self, job_id: str) -> str:
        """Request cancellation; returns the job's state after the request.

        ``"cancelled"`` means it resolved immediately (it was queued or
        already terminal); ``"running"`` means the stop lands at the
        next pass boundary — poll :meth:`status` for the outcome.
        """
        response = self._request({"op": "cancel", "job_id": job_id})
        return response["state"]

    def jobs(self) -> list[dict]:
        """Status records for every job the server knows, oldest first."""
        from repro.ir.serialize import job_status_from_dict

        response = self._request({"op": "jobs"})
        return [job_status_from_dict(entry) for entry in response["jobs"]]

    def stats(self) -> dict:
        """The server's :meth:`CompileService.stats` dict."""
        from repro.ir.serialize import service_stats_from_dict

        return service_stats_from_dict(self._request({"op": "stats"})["stats"])


__all__ = ["DEFAULT_POLL_SECONDS", "ServiceClient", "parse_service_url"]
