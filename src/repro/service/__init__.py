"""Compilation-as-a-service: a resilient async compile-job server.

The batch engine (:mod:`repro.compiler.batch`) made one *process* share
one warm pulse cache across a sweep; this package makes one *server*
share one resident engine across many submitting processes and
machines.  Clients submit ``repro-ir-v1`` job envelopes over the cache
protocol's length-prefixed JSON framing; the server queues them with
explicit backpressure, compiles them on worker threads, quarantines
poisoned circuits behind a circuit breaker, journals every transition
crash-safely, and serves the finished artifacts back.

Pieces:

* :mod:`~repro.service.protocol` — op vocabulary and response shapes.
* :mod:`~repro.service.queue` — bounded reject-not-block job queue.
* :mod:`~repro.service.breaker` — per-signature circuit breaker.
* :mod:`~repro.service.journal` — atomic job manifest + result artifacts.
* :mod:`~repro.service.server` — :class:`CompileService` itself.
* :mod:`~repro.service.client` — :class:`ServiceClient`.

Run a server with ``python -m repro.service``; talk to it with
:class:`ServiceClient` or ``python -m repro.experiments.runner
--submit-url HOST:PORT``.
"""

from repro.service.breaker import (
    DEFAULT_BREAKER_COOLDOWN,
    DEFAULT_BREAKER_THRESHOLD,
    CircuitBreaker,
)
from repro.service.client import ServiceClient, parse_service_url
from repro.service.journal import JobJournal
from repro.service.protocol import (
    REJECT_QUARANTINED,
    REJECT_QUEUE_FULL,
    SERVICE_FORMAT,
    SERVICE_OPS,
)
from repro.service.queue import BoundedJobQueue
from repro.service.server import (
    DEFAULT_QUEUE_LIMIT,
    CompileService,
    job_signature,
)

__all__ = [
    "DEFAULT_BREAKER_COOLDOWN",
    "DEFAULT_BREAKER_THRESHOLD",
    "DEFAULT_QUEUE_LIMIT",
    "REJECT_QUARANTINED",
    "REJECT_QUEUE_FULL",
    "SERVICE_FORMAT",
    "SERVICE_OPS",
    "BoundedJobQueue",
    "CircuitBreaker",
    "CompileService",
    "JobJournal",
    "ServiceClient",
    "job_signature",
    "parse_service_url",
]
