"""Bounded FIFO job queue with reject-not-block admission.

The compile service's front door must never hang a client: when the
queue is full, :meth:`BoundedJobQueue.offer` returns ``False``
immediately and the server answers with an explicit backpressure
response (including a retry hint) instead of parking the connection.
Blocking therefore exists only on the *consumer* side — worker threads
wait in :meth:`take` until a job (or shutdown) arrives.

A plain :class:`queue.Queue` almost fits, but its full-queue semantics
are block-or-raise and its shutdown story predates 3.13; this ~80-line
deque keeps admission, draining, and close semantics explicit and
testable.
"""

from __future__ import annotations

import threading
from collections import deque


class BoundedJobQueue:
    """Thread-safe FIFO with a hard capacity and non-blocking admission.

    Args:
        limit: Maximum queued items; ``None`` means unbounded (the
            resume path re-enqueues journaled jobs through ``force=True``
            regardless, so a tiny limit cannot strand a restarted
            backlog).
    """

    def __init__(self, limit: int | None = None) -> None:
        if limit is not None and limit < 1:
            raise ValueError("queue limit must be at least 1 (or None)")
        self.limit = limit
        self._items: deque = deque()
        self._condition = threading.Condition()
        self._closed = False
        self.offered = 0
        self.rejected = 0

    def __len__(self) -> int:
        with self._condition:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._condition:
            return self._closed

    def offer(self, item, force: bool = False) -> bool:
        """Enqueue without blocking; False when full (or closed).

        ``force`` bypasses the capacity check — the journal-resume path
        uses it so a restart re-admits every incomplete job even when
        the backlog exceeds the configured limit (rejecting previously
        accepted work would break the at-least-once contract).
        """
        with self._condition:
            if self._closed:
                return False
            if (
                not force
                and self.limit is not None
                and len(self._items) >= self.limit
            ):
                self.rejected += 1
                return False
            self._items.append(item)
            self.offered += 1
            self._condition.notify()
            return True

    def take(self, timeout: float | None = None):
        """Dequeue the oldest item, waiting up to ``timeout`` seconds.

        Returns ``None`` on timeout or when the queue is closed and
        drained — worker loops treat both as "check for shutdown and
        loop".
        """
        with self._condition:
            while not self._items:
                if self._closed:
                    return None
                if not self._condition.wait(timeout=timeout):
                    return None
            return self._items.popleft()

    def close(self) -> list:
        """Stop admissions, wake every waiter; returns the drained items.

        Already-queued items are handed back to the caller (the service
        journals them as still-queued so a restart resumes them) rather
        than left for workers to race shutdown over.
        """
        with self._condition:
            self._closed = True
            drained = list(self._items)
            self._items.clear()
            self._condition.notify_all()
            return drained

    def stats(self) -> dict:
        with self._condition:
            return {
                "depth": len(self._items),
                "limit": self.limit,
                "offered": self.offered,
                "rejected": self.rejected,
                "closed": self._closed,
            }
