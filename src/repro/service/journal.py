"""Crash-safe journal of submitted compile jobs.

The service's restart story: every accepted job is recorded here (the
full ``repro-ir-v1`` job envelope plus its lifecycle state), every state
transition rewrites the journal, and every finished result is persisted
as a standalone artifact *before* the job is marked done.  A restarted
server therefore re-reports completed work (serving results straight
from the artifact directory) and re-enqueues whatever was queued or
running when the previous process died — and because the pulse cache
persisted independently, those re-runs answer their optimal-control
queries warm instead of re-synthesizing.

All writes use the disk cache's crash discipline
(:func:`repro.control.cache.disk.replace_into`: unique ``mkstemp`` temp
file in the same directory, fsync, atomic :func:`os.replace`), so a
killed writer can truncate only its own temp file, never the live
journal or a finished artifact.

Layout under the journal directory::

    journal.json          # the manifest: every job record + next serial
    results/<job_id>.json # one repro-ir-v1 result artifact per done job
"""

from __future__ import annotations

import json
import os
import threading

from repro.control.cache.disk import replace_into
from repro.errors import ServiceError

JOURNAL_FORMAT = "repro-service-journal-v1"

#: Lifecycle states a journaled job can be in.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a restart must resume (re-enqueue): the job was accepted but
#: produced no durable outcome before the previous process died.
RESUMABLE_STATES = ("queued", "running")


class JobJournal:
    """Atomic-on-every-write job manifest plus result artifacts.

    Args:
        directory: Journal root; created (with its ``results/``
            subdirectory) if absent.  An existing manifest is loaded —
            construction is how a restarted server recovers its state.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = os.fspath(directory)
        self.results_dir = os.path.join(self.directory, "results")
        os.makedirs(self.results_dir, exist_ok=True)
        self._lock = threading.Lock()
        self._records: dict[str, dict] = {}
        self.next_serial = 1
        self._load()

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, "journal.json")

    # -- recovery --------------------------------------------------------

    def _load(self) -> None:
        if not os.path.exists(self.manifest_path):
            return
        with open(self.manifest_path, encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("format") != JOURNAL_FORMAT:
            raise ServiceError(
                f"{self.manifest_path}: unknown journal format "
                f"{payload.get('format')!r} (this build reads "
                f"{JOURNAL_FORMAT!r})"
            )
        self.next_serial = int(payload.get("next_serial", 1))
        for record in payload.get("jobs", []):
            self._records[record["job_id"]] = dict(record)

    def resumable(self) -> list[dict]:
        """Records a restarted server must re-enqueue, oldest first.

        Jobs journaled as ``done`` whose result artifact is missing or
        unreadable (a crash between artifact write and manifest update
        loses nothing — the artifact lands first — but operators can
        delete artifacts) are demoted to resumable too: better to
        recompile from the warm cache than to claim a result we cannot
        serve.
        """
        with self._lock:
            records = [dict(r) for r in self._records.values()]
        out = []
        for record in sorted(records, key=lambda r: r.get("serial", 0)):
            state = record["state"]
            if state in RESUMABLE_STATES:
                out.append(record)
            elif state == "done" and not os.path.exists(
                self.result_path(record["job_id"])
            ):
                out.append(record)
        return out

    # -- recording -------------------------------------------------------

    def record(self, record: dict) -> None:
        """Insert or update one job record and rewrite the manifest."""
        with self._lock:
            self._records[record["job_id"]] = dict(record)
            self._write_manifest()

    def allocate_serial(self) -> int:
        """Next monotonically increasing job serial (journal-durable)."""
        with self._lock:
            serial = self.next_serial
            self.next_serial += 1
            return serial

    def get(self, job_id: str) -> dict | None:
        with self._lock:
            record = self._records.get(job_id)
            return dict(record) if record is not None else None

    def records(self) -> list[dict]:
        with self._lock:
            return [dict(r) for r in self._records.values()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def _write_manifest(self) -> None:
        """Rewrite ``journal.json`` atomically (call with the lock held).

        The manifest is small — job envelopes for circuits at the
        paper's scale are a few KB — so a full rewrite per transition is
        cheaper than a log-structured format plus compaction, and every
        on-disk state is a complete, valid snapshot.
        """
        payload = {
            "format": JOURNAL_FORMAT,
            "next_serial": self.next_serial,
            "jobs": sorted(
                self._records.values(), key=lambda r: r.get("serial", 0)
            ),
        }
        replace_into(
            lambda handle: handle.write(
                json.dumps(payload, indent=1).encode("utf-8")
            ),
            self.manifest_path,
            ".tmp.json",
        )

    # -- result artifacts ------------------------------------------------

    def result_path(self, job_id: str) -> str:
        return os.path.join(self.results_dir, f"{job_id}.json")

    def write_result(self, job_id: str, result) -> str:
        """Persist one finished result artifact crash-safely.

        Called *before* the job's record transitions to ``done`` — a
        crash between the two leaves a ``running`` record with an
        orphaned artifact, which a restart simply recompiles (warm), the
        safe direction.  Returns the artifact path.
        """
        from repro.ir.serialize import result_to_dict

        payload = result_to_dict(result, include_source=True)
        path = self.result_path(job_id)
        replace_into(
            lambda handle: handle.write(json.dumps(payload).encode("utf-8")),
            path,
            ".tmp.json",
        )
        return path

    def read_result(self, job_id: str):
        """Load one persisted result, or None when absent/unreadable."""
        from repro.ir.serialize import result_from_dict

        path = self.result_path(job_id)
        if not os.path.exists(path):
            return None
        try:
            with open(path, encoding="utf-8") as handle:
                return result_from_dict(json.load(handle))
        except Exception:
            return None
