"""Per-signature circuit breaker: quarantine poisoned circuits.

A circuit that deterministically fails compilation (an unplaceable
width, a gate the device cannot price, a pathological aggregation) would
otherwise be resubmitted by retrying clients and burn a worker on every
attempt — with enough retrying clients, the whole pool wedges on one bad
input.  The breaker isolates that failure mode per *job signature* (a
content digest of the submitted job, so renamed copies of the same
circuit share a breaker):

* **closed** — normal operation; consecutive failures are counted.
* **open** — after ``threshold`` consecutive failures the signature is
  quarantined: submissions are rejected instantly (with ``retry_after``)
  for ``cooldown`` seconds, costing zero worker time.
* **half-open** — after the cooldown one probe submission is admitted.
  Success closes the breaker (transient fault — a since-fixed strategy
  registration, an evicted-then-rewarmed cache); failure re-opens it for
  another cooldown.

States and transitions follow the classic pattern (Nygard, *Release
It!*); thresholds are per-service configuration.
"""

from __future__ import annotations

import threading
import time

#: Consecutive failures that trip a signature's breaker.
DEFAULT_BREAKER_THRESHOLD = 3

#: Seconds a tripped signature stays quarantined before one probe runs.
DEFAULT_BREAKER_COOLDOWN = 30.0

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class _Entry:
    __slots__ = ("failures", "state", "opened_until", "probing")

    def __init__(self) -> None:
        self.failures = 0
        self.state = CLOSED
        self.opened_until = 0.0
        self.probing = False


class CircuitBreaker:
    """Failure isolation keyed by job signature.

    Args:
        threshold: Consecutive failures that trip a signature.
        cooldown: Quarantine seconds before a half-open probe is let
            through.
        clock: Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        threshold: int = DEFAULT_BREAKER_THRESHOLD,
        cooldown: float = DEFAULT_BREAKER_COOLDOWN,
        clock=time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be at least 1")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._entries: dict[str, _Entry] = {}
        self._lock = threading.Lock()
        self.tripped = 0
        self.rejections = 0
        self.recoveries = 0

    def allow(self, signature: str) -> tuple[bool, float]:
        """Admission check for one submission.

        Returns ``(allowed, retry_after)``.  ``retry_after`` is 0 when
        allowed; otherwise the seconds until the quarantine's next
        half-open probe slot.  When an open breaker's cooldown has
        elapsed, exactly one caller is admitted as the probe — others
        stay rejected until :meth:`record_success` or
        :meth:`record_failure` resolves it.
        """
        now = self._clock()
        with self._lock:
            entry = self._entries.get(signature)
            if entry is None or entry.state == CLOSED:
                return True, 0.0
            if entry.state == OPEN and now >= entry.opened_until:
                entry.state = HALF_OPEN
                entry.probing = False
            if entry.state == HALF_OPEN and not entry.probing:
                entry.probing = True
                return True, 0.0
            self.rejections += 1
            remaining = max(0.0, entry.opened_until - now)
            # A half-open probe in flight: suggest a short retry — the
            # probe's verdict lands within one job, not one cooldown.
            return False, remaining if entry.state == OPEN else 1.0

    def record_success(self, signature: str) -> None:
        """A job with this signature compiled; close its breaker."""
        with self._lock:
            entry = self._entries.pop(signature, None)
            if entry is not None and entry.state != CLOSED:
                self.recoveries += 1

    def record_failure(self, signature: str) -> bool:
        """A job with this signature failed; True when this trip opened it."""
        with self._lock:
            entry = self._entries.setdefault(signature, _Entry())
            entry.failures += 1
            if entry.state == HALF_OPEN:
                # The probe failed: straight back to quarantine.
                entry.state = OPEN
                entry.probing = False
                entry.opened_until = self._clock() + self.cooldown
                self.tripped += 1
                return True
            if entry.state == CLOSED and entry.failures >= self.threshold:
                entry.state = OPEN
                entry.opened_until = self._clock() + self.cooldown
                self.tripped += 1
                return True
            return False

    def state_of(self, signature: str) -> str:
        """Current state name, with open→half-open promotion applied."""
        now = self._clock()
        with self._lock:
            entry = self._entries.get(signature)
            if entry is None:
                return CLOSED
            if entry.state == OPEN and now >= entry.opened_until:
                return HALF_OPEN
            return entry.state

    def stats(self) -> dict:
        with self._lock:
            states = {CLOSED: 0, OPEN: 0, HALF_OPEN: 0}
            for entry in self._entries.values():
                states[entry.state] += 1
            return {
                "threshold": self.threshold,
                "cooldown_seconds": self.cooldown,
                "tracked_signatures": len(self._entries),
                "open": states[OPEN],
                "half_open": states[HALF_OPEN],
                "tripped": self.tripped,
                "rejections": self.rejections,
                "recoveries": self.recoveries,
            }
