"""Run a compile service: ``python -m repro.service``.

One resident engine, one warm pulse cache, any number of submitting
clients.  Typical deployment::

    python -m repro.service --port 7788 --cache fleet_cache --journal jobs &
    python -m repro.experiments.runner --submit-url 127.0.0.1:7788 ...

The cache flag family matches the runner and the cache server: ``--cache``
mounts a disk stem or sharded directory, ``--cache-url`` mounts a
``python -m repro.control.cache_server`` fleet cache instead.  With
``--journal DIR`` the server restarts without losing accepted work:
completed artifacts are re-served from disk, interrupted jobs re-run
against the still-warm cache.  Clean shutdown on SIGINT/SIGTERM
persists the cache.
"""

from __future__ import annotations

import argparse
import signal
import sys

from repro.compiler.batch import BatchCompiler
from repro.control.cache import resolve_cache
from repro.service.breaker import (
    DEFAULT_BREAKER_COOLDOWN,
    DEFAULT_BREAKER_THRESHOLD,
)
from repro.service.server import DEFAULT_QUEUE_LIMIT, CompileService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Resident compile-job server over the repro wire format.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=7788, help="bind port (0 picks a free one)"
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help="persistent pulse cache: a <stem>.json/.npz pair stem, or a "
        "sharded cache directory (loaded at start, saved on shutdown)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count when --cache creates a new sharded directory",
    )
    parser.add_argument(
        "--cache-url",
        default=None,
        metavar="HOST:PORT",
        help="mount a shared cache server instead of a local store "
        "(python -m repro.control.cache_server); overrides --cache",
    )
    parser.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="LRU eviction budget for the local cache store, in bytes",
    )
    parser.add_argument(
        "--backend",
        choices=("model", "grape"),
        default="model",
        help="optimal-control backend for the resident engine",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="compile worker threads (0 queues jobs without running them)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=DEFAULT_QUEUE_LIMIT,
        help="queued-job bound before submissions get backpressure",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="per-job wall-clock budget in seconds (cancelled past it)",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=DEFAULT_BREAKER_THRESHOLD,
        help="consecutive failures that quarantine a job signature",
    )
    parser.add_argument(
        "--breaker-cooldown",
        type=float,
        default=DEFAULT_BREAKER_COOLDOWN,
        help="quarantine seconds before a half-open probe is admitted",
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="DIR",
        help="crash-safe job journal directory (restarts resume work)",
    )
    parser.add_argument(
        "--result-cache",
        default=None,
        metavar="DIR",
        help="content-addressed compiled-result cache directory: repeat "
        "jobs are served whole without recompiling, across restarts",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    cache = resolve_cache(
        path=args.cache,
        url=args.cache_url,
        shards=args.shards,
        max_bytes=args.max_bytes,
    )
    engine = BatchCompiler(
        cache=cache, backend=args.backend, result_cache=args.result_cache
    )
    service = CompileService(
        engine=engine,
        host=args.host,
        port=args.port,
        queue_limit=args.queue_limit,
        workers=args.workers,
        job_timeout=args.job_timeout,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        journal=args.journal,
    )
    resumed = f", {service.resumed} jobs resumed" if service.resumed else ""
    print(
        f"compile service listening on {service.url} "
        f"({args.workers} workers, {args.backend} backend{resumed})",
        flush=True,
    )
    signal.signal(signal.SIGTERM, lambda *_: sys.exit(0))
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()
        stats = service.stats()
        print(
            f"compile service stopped: {stats['completed']} jobs completed, "
            f"{stats['failed']} failed, "
            f"{sum(stats['requests'].values())} requests served",
            flush=True,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
