"""Typed, serializable compiler IR.

Every artifact the compiler produces or consumes — circuits, gates,
devices, schedules, pulses, aggregated instructions, whole compilation
results, and batch cache deltas — has a stable dictionary form and a
JSON wire format here, versioned as :data:`IR_FORMAT`.  The wire format
is what lets artifacts leave the Python process: results persist to
disk (``CompilationResult.save``/``load``), batch jobs ship to worker
*processes* (``BatchCompiler(executor="process")``), and caches of
expensive optimal-control work merge across process boundaries.

Two layers:

* :mod:`repro.ir.timed` — the typed schedule atom
  :class:`TimedInstruction` (replacing the untyped
  ``TimedOperation.node: object`` with a stable integer ``node_id``)
  and the two named scheduling tolerances.
* :mod:`repro.ir.serialize` — ``<thing>_to_dict`` / ``<thing>_from_dict``
  pairs for every artifact, plus the generic :func:`dumps` /
  :func:`loads` envelope that dispatches on each payload's ``kind`` tag.

Round-trip guarantees (enforced by ``tests/ir/``): gate and instruction
``signature``\\ s, device ``signature()``\\ s and pulse-cache
``config_fingerprint``\\ s are preserved exactly, and a deserialized
:class:`~repro.compiler.result.CompilationResult` still passes
``verify_equivalence()`` against its deserialized source circuit.
"""

from repro.ir.serialize import (
    IR_FORMAT,
    batch_job_from_dict,
    batch_job_to_dict,
    cache_delta_from_dict,
    cache_delta_to_dict,
    canonical_result_dict,
    circuit_from_dict,
    circuit_to_dict,
    compiler_config_from_dict,
    compiler_config_to_dict,
    device_config_from_dict,
    device_config_to_dict,
    device_from_dict,
    device_to_dict,
    dumps,
    gate_from_dict,
    gate_to_dict,
    grape_result_from_dict,
    grape_result_to_dict,
    instruction_from_dict,
    instruction_to_dict,
    job_status_from_dict,
    job_status_to_dict,
    loads,
    node_from_dict,
    node_to_dict,
    pulse_from_dict,
    pulse_to_dict,
    result_from_dict,
    result_to_dict,
    schedule_from_dict,
    schedule_to_dict,
    service_stats_from_dict,
    service_stats_to_dict,
    topology_from_dict,
    topology_to_dict,
)
from repro.ir.timed import (
    DEPENDENCE_EPSILON_NS,
    OVERLAP_EPSILON_NS,
    TimedInstruction,
)

__all__ = [
    "DEPENDENCE_EPSILON_NS",
    "IR_FORMAT",
    "OVERLAP_EPSILON_NS",
    "TimedInstruction",
    "batch_job_from_dict",
    "batch_job_to_dict",
    "cache_delta_from_dict",
    "cache_delta_to_dict",
    "canonical_result_dict",
    "circuit_from_dict",
    "circuit_to_dict",
    "compiler_config_from_dict",
    "compiler_config_to_dict",
    "device_config_from_dict",
    "device_config_to_dict",
    "device_from_dict",
    "device_to_dict",
    "dumps",
    "gate_from_dict",
    "gate_to_dict",
    "grape_result_from_dict",
    "grape_result_to_dict",
    "instruction_from_dict",
    "instruction_to_dict",
    "job_status_from_dict",
    "job_status_to_dict",
    "loads",
    "node_from_dict",
    "node_to_dict",
    "pulse_from_dict",
    "pulse_to_dict",
    "result_from_dict",
    "result_to_dict",
    "schedule_from_dict",
    "schedule_to_dict",
    "service_stats_from_dict",
    "service_stats_to_dict",
    "topology_from_dict",
    "topology_to_dict",
]
