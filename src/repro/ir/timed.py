"""The typed schedule atom and the scheduling tolerances.

This module is import-light on purpose: :mod:`repro.scheduling.schedule`
builds on it, so it must not pull in any compiler-side module (which
would close an import cycle through :mod:`repro.ir.serialize`).
"""

from __future__ import annotations

import dataclasses

OVERLAP_EPSILON_NS = 1e-12
"""Slack (ns) when testing whether two time windows intersect.

Two operations whose windows share less than this much time count as
back-to-back, not overlapping, so a node starting exactly where its
qubit-neighbour ends never trips the overlap validator on float
round-off.  This is a *numerical* tolerance: it only needs to absorb
last-bit errors of start/duration arithmetic, hence the tight value.
"""

DEPENDENCE_EPSILON_NS = 1e-9
"""Slack (ns) when checking that a node starts after its predecessors.

Looser than :data:`OVERLAP_EPSILON_NS` because dependence times are
*derived* quantities — a start time is a max over sums of many float
latencies (scheduler accumulation), so the comparison must absorb the
accumulated error of whole latency chains, not a single subtraction.
Keep the two distinct: tightening this one to ``1e-12`` makes long
schedules fail validation on benign accumulation noise, and loosening
the overlap tolerance to ``1e-9`` lets the schedulers hide real
sub-nanosecond double-booking.
"""


@dataclasses.dataclass(frozen=True)
class TimedInstruction:
    """A node placed on the time axis.

    The typed replacement for the historical ``TimedOperation`` whose
    ``node`` was an untyped ``object`` keyed by ``id()``: ``node`` is a
    :class:`~repro.gates.gate.Gate` or an
    :class:`~repro.aggregation.instruction.AggregatedInstruction` (both
    expose ``qubits``/``signature``), and :attr:`node_id` is a stable
    per-schedule integer — assigned by :meth:`Schedule.add
    <repro.scheduling.schedule.Schedule.add>` in insertion order — that
    survives serialization, unlike ``id()``.

    Attributes:
        node: The scheduled gate or aggregated instruction.
        start: Start time (ns).
        duration: Duration (ns).
        node_id: Stable integer identity within the owning schedule
            (insertion index); ``-1`` for free-standing instances built
            outside a :class:`~repro.scheduling.schedule.Schedule`.
    """

    node: object
    start: float
    duration: float
    node_id: int = -1

    @property
    def end(self) -> float:
        return self.start + self.duration

    def overlaps(self, other: TimedInstruction) -> bool:
        """True when the two operations' time windows intersect."""
        return (
            self.start < other.end - OVERLAP_EPSILON_NS
            and other.start < self.end - OVERLAP_EPSILON_NS
        )
