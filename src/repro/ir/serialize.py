"""The versioned JSON wire format of every compiler artifact.

Format version: :data:`IR_FORMAT` (``repro-ir-v1``).  Every payload is a
plain dictionary of JSON types carrying two envelope keys — ``format``
(the version tag, checked on load) and ``kind`` (the artifact type,
dispatched by :func:`loads`).  Numbers round-trip exactly: Python's
``json`` serializes floats via ``repr``, which is lossless for IEEE-754
doubles, so gate parameters, times and amplitudes come back bit-equal
and every structural ``signature`` / ``config_fingerprint`` computed
from a deserialized artifact matches the original's.

Gates serialize *by name* when the gate library can rebuild an identical
matrix from ``(name, qubits, params)`` — the common case after lowering —
and fall back to an explicit complex matrix (nested ``[re, im]`` pairs)
for custom unitaries, so arbitrary gates survive the trip at the cost of
a larger payload.

Stability guarantees of ``repro-ir-v1``:

* a payload written by version N loads in any later patch of N;
* unknown *top-level* keys are ignored on load (forward-compatible
  additions), but a different ``format`` tag is rejected loudly;
* schedule nodes are referenced by their stable integer ``node_id``
  (insertion order), never by process-local ``id()``.
"""

from __future__ import annotations

import ast
import dataclasses
import functools
import json
from typing import TYPE_CHECKING

import numpy as np

from repro.circuit.circuit import Circuit
from repro.config import CompilerConfig, DeviceConfig
from repro.control.grape import GrapeResult
from repro.control.pulse import Pulse
from repro.device.device import Device
from repro.device.topology import (
    FullyConnectedTopology,
    GridTopology,
    HeavyHexTopology,
    LineTopology,
    RingTopology,
    Topology,
)
from repro.errors import GateError, SerializationError
from repro.gates.gate import Gate
from repro.gates.library import gate_from_name

if TYPE_CHECKING:
    from repro.aggregation.instruction import AggregatedInstruction
    from repro.compiler.result import CompilationResult
    from repro.control.cache import CacheDelta
    from repro.scheduling.schedule import Schedule

IR_FORMAT = "repro-ir-v1"


# ----------------------------------------------------------------------
# Envelope helpers


def _envelope(kind: str, payload: dict) -> dict:
    return {"format": IR_FORMAT, "kind": kind, **payload}


def _check(payload, kind: str) -> dict:
    if not isinstance(payload, dict):
        raise SerializationError(
            f"expected a {kind!r} payload dictionary, got {type(payload).__name__}"
        )
    found = payload.get("format")
    if found != IR_FORMAT:
        raise SerializationError(
            f"unknown IR format {found!r} (this build reads {IR_FORMAT!r})"
        )
    found_kind = payload.get("kind")
    if found_kind != kind:
        raise SerializationError(
            f"expected kind {kind!r}, got {found_kind!r}"
        )
    return payload


def _matrix_to_wire(matrix: np.ndarray) -> list:
    """Complex matrix as nested ``[re, im]`` pairs (exact floats)."""
    matrix = np.asarray(matrix, dtype=complex)
    return [
        [[float(entry.real), float(entry.imag)] for entry in row]
        for row in matrix
    ]


def _matrix_from_wire(rows: list) -> np.ndarray:
    try:
        matrix = np.array(
            [[complex(re, im) for re, im in row] for row in rows],
            dtype=complex,
        )
    except (TypeError, ValueError) as error:
        raise SerializationError(f"malformed matrix payload: {error}") from None
    return matrix


# ----------------------------------------------------------------------
# Gates and instructions


@functools.lru_cache(maxsize=4096)
def _library_matrix(
    name: str, arity: int, params: tuple
) -> np.ndarray | None:
    """The gate library's matrix for ``(name, params)``, or None.

    Library matrices do not depend on the concrete qubit labels (those
    only say where the matrix applies), so one memoized build per
    ``(name, arity, params)`` serves every occurrence — serialization
    sits on the process executor's per-job hot path and must not re-run
    ``Gate.__post_init__``'s unitarity check per scheduled gate.
    """
    try:
        return gate_from_name(name, tuple(range(arity)), params).matrix
    except (GateError, TypeError):
        return None


def gate_to_dict(gate: Gate) -> dict:
    """Wire form of one gate.

    Library gates (every mnemonic :func:`~repro.gates.library.gate_from_name`
    accepts, with a bit-identical reconstructed matrix) carry only
    ``(name, qubits, params)``; anything else — custom unitaries,
    daggered names, renamed gates — ships its matrix explicitly.
    """
    payload = {
        "name": gate.name,
        "qubits": list(gate.qubits),
        "params": list(gate.params),
    }
    library = _library_matrix(gate.name, len(gate.qubits), gate.params)
    if library is not None and np.array_equal(library, gate.matrix):
        return _envelope("gate", payload)
    payload["matrix"] = _matrix_to_wire(gate.matrix)
    return _envelope("gate", payload)


def gate_from_dict(payload: dict) -> Gate:
    payload = _check(payload, "gate")
    name = payload["name"]
    qubits = tuple(int(q) for q in payload["qubits"])
    params = tuple(float(p) for p in payload["params"])
    if "matrix" in payload:
        return Gate(name, qubits, _matrix_from_wire(payload["matrix"]), params)
    return gate_from_name(name, qubits, params)


def instruction_to_dict(instruction) -> dict:
    """Wire form of an aggregated (or hand-optimized) instruction."""
    from repro.compiler.hand_opt import HandOptimizedInstruction

    payload: dict = {
        "name": instruction.name,
        "gates": [gate_to_dict(gate) for gate in instruction.gates],
    }
    if isinstance(instruction, HandOptimizedInstruction):
        payload["hand_latency_ns"] = float(instruction.hand_latency_ns)
    return _envelope("instruction", payload)


def instruction_from_dict(payload: dict) -> AggregatedInstruction:
    from repro.aggregation.instruction import AggregatedInstruction
    from repro.compiler.hand_opt import HandOptimizedInstruction

    payload = _check(payload, "instruction")
    gates = [gate_from_dict(entry) for entry in payload["gates"]]
    name = payload["name"]
    if "hand_latency_ns" in payload:
        return HandOptimizedInstruction(
            gates, float(payload["hand_latency_ns"]), name=name
        )
    return AggregatedInstruction(gates, name=name)


def node_to_dict(node) -> dict:
    """Wire form of any schedule node (gate or instruction)."""
    from repro.aggregation.instruction import AggregatedInstruction

    if isinstance(node, AggregatedInstruction):
        return instruction_to_dict(node)
    if isinstance(node, Gate):
        return gate_to_dict(node)
    raise SerializationError(
        f"cannot serialize schedule node {node!r} "
        f"(expected a Gate or AggregatedInstruction)"
    )


def node_from_dict(payload: dict) -> Gate | AggregatedInstruction:
    kind = payload.get("kind") if isinstance(payload, dict) else None
    if kind == "instruction":
        return instruction_from_dict(payload)
    return gate_from_dict(payload)


# ----------------------------------------------------------------------
# Circuits


def circuit_to_dict(circuit: Circuit) -> dict:
    return _envelope(
        "circuit",
        {
            "name": circuit.name,
            "num_qubits": circuit.num_qubits,
            "gates": [gate_to_dict(gate) for gate in circuit.gates],
        },
    )


def circuit_from_dict(payload: dict) -> Circuit:
    payload = _check(payload, "circuit")
    circuit = Circuit(int(payload["num_qubits"]), name=payload["name"])
    circuit.extend(gate_from_dict(entry) for entry in payload["gates"])
    return circuit


# ----------------------------------------------------------------------
# Topologies and devices


def topology_to_dict(topology: Topology) -> dict:
    """Wire form of a coupling graph.

    Structured families serialize their *constructor parameters* (grid
    rows/cols, heavy-hex distance, ...) so the exact subclass — with its
    load-bearing neighbour order and placement order — is rebuilt on
    load; a plain :class:`Topology` serializes its edge list.
    """
    if isinstance(topology, LineTopology):
        payload = {"family": "line", "num_qubits": topology.cols}
    elif isinstance(topology, GridTopology):
        payload = {"family": "grid", "rows": topology.rows, "cols": topology.cols}
    elif isinstance(topology, RingTopology):
        payload = {"family": "ring", "num_qubits": topology.num_qubits}
    elif isinstance(topology, HeavyHexTopology):
        payload = {"family": "heavy-hex", "distance": topology.distance_param}
    elif isinstance(topology, FullyConnectedTopology):
        payload = {"family": "all-to-all", "num_qubits": topology.num_qubits}
    elif type(topology) is Topology:
        payload = {
            "family": "graph",
            "num_qubits": topology.num_qubits,
            "edges": [list(edge) for edge in topology.edges()],
        }
    else:
        # An unknown subclass may override distances/orders; silently
        # flattening it to a generic graph would change placement.
        raise SerializationError(
            f"cannot serialize custom topology subclass "
            f"{type(topology).__name__}; serialize its defining parameters "
            f"yourself or use a plain Topology"
        )
    return _envelope("topology", payload)


def topology_from_dict(payload: dict) -> Topology:
    payload = _check(payload, "topology")
    family = payload.get("family")
    if family == "line":
        return LineTopology(int(payload["num_qubits"]))
    if family == "grid":
        return GridTopology(int(payload["rows"]), int(payload["cols"]))
    if family == "ring":
        return RingTopology(int(payload["num_qubits"]))
    if family == "heavy-hex":
        return HeavyHexTopology(int(payload["distance"]))
    if family == "all-to-all":
        return FullyConnectedTopology(int(payload["num_qubits"]))
    if family == "graph":
        return Topology(
            int(payload["num_qubits"]),
            [(int(a), int(b)) for a, b in payload["edges"]],
        )
    raise SerializationError(f"unknown topology family {family!r}")


def device_config_to_dict(config: DeviceConfig) -> dict:
    return _envelope("device_config", dataclasses.asdict(config))


def device_config_from_dict(payload: dict) -> DeviceConfig:
    payload = _check(payload, "device_config")
    fields = {f.name for f in dataclasses.fields(DeviceConfig)}
    return DeviceConfig(**{k: payload[k] for k in fields if k in payload})


def compiler_config_to_dict(config: CompilerConfig) -> dict:
    return _envelope("compiler_config", dataclasses.asdict(config))


def compiler_config_from_dict(payload: dict) -> CompilerConfig:
    payload = _check(payload, "compiler_config")
    fields = {f.name for f in dataclasses.fields(CompilerConfig)}
    return CompilerConfig(**{k: payload[k] for k in fields if k in payload})


def device_to_dict(device: Device) -> dict:
    """Wire form of a full compilation target (topology + overrides)."""
    return _envelope(
        "device",
        {
            "name": device.name,
            "topology": topology_to_dict(device.topology),
            "config": device_config_to_dict(device.config),
            "t1_us": [[int(q), float(v)] for q, v in sorted(device.t1_us.items())],
            "t2_us": [[int(q), float(v)] for q, v in sorted(device.t2_us.items())],
            "coupling_limits_ghz": [
                [int(a), int(b), float(v)]
                for (a, b), v in sorted(device.coupling_limits_ghz.items())
            ],
        },
    )


def device_from_dict(payload: dict) -> Device:
    payload = _check(payload, "device")
    return Device(
        topology=topology_from_dict(payload["topology"]),
        config=device_config_from_dict(payload["config"]),
        name=payload.get("name"),
        t1_us={int(q): float(v) for q, v in payload.get("t1_us", ())},
        t2_us={int(q): float(v) for q, v in payload.get("t2_us", ())},
        coupling_limits_ghz={
            (int(a), int(b)): float(v)
            for a, b, v in payload.get("coupling_limits_ghz", ())
        },
    )


# ----------------------------------------------------------------------
# Schedules


def schedule_to_dict(schedule) -> dict:
    """Wire form of a schedule: a node table plus timed references.

    The node table carries one entry per operation under its stable
    ``node_id`` (``Schedule.add`` assigns insertion indices, so the
    table is 1:1 with the operation list); operations reference ids,
    keeping the timed triples compact and the node payloads addressable.
    """
    return _envelope(
        "schedule",
        {
            "num_qubits": schedule.num_qubits,
            "nodes": [
                {"id": op.node_id, "node": node_to_dict(op.node)}
                for op in schedule.operations
            ],
            "operations": [
                {"node": op.node_id, "start": op.start, "duration": op.duration}
                for op in schedule.operations
            ],
        },
    )


def schedule_from_dict(payload: dict) -> Schedule:
    from repro.scheduling.schedule import Schedule

    payload = _check(payload, "schedule")
    table = {}
    for entry in payload["nodes"]:
        node_id = int(entry["id"])
        if node_id in table:
            raise SerializationError(
                f"schedule payload repeats node id {node_id}"
            )
        table[node_id] = node_from_dict(entry["node"])
    schedule = Schedule(int(payload["num_qubits"]))
    for record in payload["operations"]:
        node_id = int(record["node"])
        if node_id not in table:
            raise SerializationError(
                f"schedule operation references unknown node id {node_id}"
            )
        schedule.add(
            table[node_id], float(record["start"]), float(record["duration"])
        )
    return schedule


# ----------------------------------------------------------------------
# Pulses and optimal-control results


def pulse_to_dict(pulse: Pulse) -> dict:
    return _envelope(
        "pulse",
        {
            "control_names": list(pulse.control_names),
            "dt": float(pulse.dt),
            "amplitudes": [
                [float(v) for v in row] for row in np.asarray(pulse.amplitudes)
            ],
        },
    )


def pulse_from_dict(payload: dict) -> Pulse:
    payload = _check(payload, "pulse")
    amplitudes = np.array(payload["amplitudes"], dtype=float)
    if amplitudes.size == 0:
        amplitudes = amplitudes.reshape(0, len(payload["control_names"]))
    return Pulse(
        control_names=list(payload["control_names"]),
        amplitudes=amplitudes,
        dt=float(payload["dt"]),
    )


def grape_result_to_dict(result: GrapeResult) -> dict:
    return _envelope(
        "grape_result",
        {
            "fidelity": float(result.fidelity),
            "converged": bool(result.converged),
            "iterations": int(result.iterations),
            "pulse": pulse_to_dict(result.pulse),
            "final_unitary": _matrix_to_wire(result.final_unitary),
            "loss_history": [float(x) for x in result.loss_history],
        },
    )


def grape_result_from_dict(payload: dict) -> GrapeResult:
    payload = _check(payload, "grape_result")
    return GrapeResult(
        fidelity=float(payload["fidelity"]),
        converged=bool(payload["converged"]),
        iterations=int(payload["iterations"]),
        pulse=pulse_from_dict(payload["pulse"]),
        final_unitary=_matrix_from_wire(payload["final_unitary"]),
        loss_history=[float(x) for x in payload["loss_history"]],
    )


# ----------------------------------------------------------------------
# Cache deltas (process workers ship these back to the batch engine)


def cache_delta_to_dict(delta) -> dict:
    """Wire form of a worker's cache delta.

    Keys follow the disk-cache convention: structural signatures are
    pure literals serialized with :func:`repr` and parsed back with
    :func:`ast.literal_eval`, so the round trip is exact.
    """
    return _envelope(
        "cache_delta",
        {
            "latencies": [
                [fingerprint, backend, repr(signature), float(value)]
                for (fingerprint, backend, signature), value
                in delta.latencies.items()
            ],
            "pulses": [
                {
                    "fingerprint": fingerprint,
                    "signature": repr(signature),
                    "result": grape_result_to_dict(result),
                }
                for (fingerprint, signature), result in delta.pulses.items()
            ],
        },
    )


def cache_delta_from_dict(payload: dict) -> CacheDelta:
    from repro.control.cache import CacheDelta

    payload = _check(payload, "cache_delta")
    delta = CacheDelta()
    for fingerprint, backend, signature, value in payload["latencies"]:
        delta.latencies[
            (fingerprint, backend, ast.literal_eval(signature))
        ] = float(value)
    for record in payload["pulses"]:
        delta.pulses[
            (record["fingerprint"], ast.literal_eval(record["signature"]))
        ] = grape_result_from_dict(record["result"])
    return delta


def cache_stats_to_dict(stats: dict) -> dict:
    """Wire form of a cache backend's ``stats()`` dict.

    The payload is already flat JSON-safe scalars (plus one nested
    request-count map on the server side); the envelope only adds the
    format/kind header so stats can travel the same channels as every
    other artifact (the cache server's ``stats`` op, bench reports).
    """
    return _envelope("cache_stats", {"stats": dict(stats)})


def cache_stats_from_dict(payload: dict) -> dict:
    payload = _check(payload, "cache_stats")
    return dict(payload["stats"])


# ----------------------------------------------------------------------
# Compilation results


def result_to_dict(result, include_source: bool = True) -> dict:
    """Wire form of a whole compilation result.

    ``include_source=False`` drops the source circuit (smaller payload);
    the loaded result then cannot ``verify_equivalence()`` without an
    explicit circuit argument.
    """
    payload = {
        "strategy_key": result.strategy_key,
        "circuit_name": result.circuit_name,
        "logical_qubits": int(result.logical_qubits),
        "physical_qubits": int(result.physical_qubits),
        "schedule": schedule_to_dict(result.schedule),
        "latency_ns": float(result.latency_ns),
        "swap_count": int(result.swap_count),
        "lowered_gate_count": int(result.lowered_gate_count),
        "aggregation_merges": int(result.aggregation_merges),
        "stage_seconds": {k: float(v) for k, v in result.stage_seconds.items()},
        "pass_seconds": {k: float(v) for k, v in result.pass_seconds.items()},
        "final_mapping": [
            [int(k), int(v)] for k, v in sorted(result.final_mapping.items())
        ],
        "initial_mapping": [
            [int(k), int(v)] for k, v in sorted(result.initial_mapping.items())
        ],
        "device_name": result.device_name,
    }
    source = getattr(result, "source_circuit", None)
    if include_source and source is not None:
        payload["source_circuit"] = circuit_to_dict(source)
    return _envelope("result", payload)


def result_from_dict(payload: dict) -> CompilationResult:
    from repro.compiler.result import CompilationResult

    payload = _check(payload, "result")
    source = payload.get("source_circuit")
    return CompilationResult(
        strategy_key=payload["strategy_key"],
        circuit_name=payload["circuit_name"],
        logical_qubits=int(payload["logical_qubits"]),
        physical_qubits=int(payload["physical_qubits"]),
        schedule=schedule_from_dict(payload["schedule"]),
        latency_ns=float(payload["latency_ns"]),
        swap_count=int(payload["swap_count"]),
        lowered_gate_count=int(payload["lowered_gate_count"]),
        aggregation_merges=int(payload["aggregation_merges"]),
        stage_seconds={
            k: float(v) for k, v in payload["stage_seconds"].items()
        },
        final_mapping={int(k): int(v) for k, v in payload["final_mapping"]},
        initial_mapping={int(k): int(v) for k, v in payload["initial_mapping"]},
        pass_seconds={k: float(v) for k, v in payload["pass_seconds"].items()},
        device_name=payload.get("device_name"),
        source_circuit=circuit_from_dict(source) if source else None,
    )


def canonical_result_dict(result) -> dict:
    """Machine-independent identity of a result (for parity checks).

    Two compilations of the same job are *semantically* identical when
    their canonical dictionaries are equal.  Relative to
    :func:`result_to_dict` this drops the wall-clock instrumentation
    (``stage_seconds``/``pass_seconds``, which legitimately vary run to
    run) and renumbers auto-generated aggregated-instruction names
    (``G<n>``, minted from a process-global counter whose value depends
    on scheduling history) in schedule order.  Everything that matters —
    node structure, times, mappings, counts — is compared exactly.
    """
    import re

    payload = result_to_dict(result, include_source=True)
    payload.pop("stage_seconds", None)
    payload.pop("pass_seconds", None)
    auto_name = re.compile(r"^G\d+$")
    counter = 0
    for entry in payload["schedule"]["nodes"]:
        node = entry["node"]
        if node.get("kind") == "instruction" and auto_name.match(node["name"]):
            counter += 1
            node["name"] = f"G{counter}"
    return payload


# ----------------------------------------------------------------------
# Compile-service jobs and status reports


def batch_job_to_dict(job) -> dict:
    """Wire form of one :class:`~repro.compiler.batch.BatchJob`.

    This is the submission unit of the compile service: everything a
    remote worker needs to compile the job — circuit, strategy key,
    width limit, optional per-job device or topology — and nothing
    process-local.  Jobs carrying in-memory pass objects cannot cross a
    machine boundary and are rejected here, with the same rationale as
    the batch engine's process executor; strategies travel by registered
    key and are re-resolved on the far side.
    """
    from repro.compiler.strategies import strategy_by_key
    from repro.errors import ConfigError

    if job.passes is not None:
        raise SerializationError(
            f"job {job.key!r} carries an explicit passes= list, which "
            f"cannot cross a machine boundary; submit a registered "
            f"strategy key instead"
        )
    try:
        strategy_by_key(job.strategy.key)
    except ConfigError:
        raise SerializationError(
            f"job {job.key!r} uses unregistered strategy "
            f"{job.strategy.key!r}: the far side rebuilds strategies from "
            f"their registered keys, so register it (register_strategy) "
            f"before submitting"
        ) from None
    payload = {
        "circuit": circuit_to_dict(job.circuit),
        "strategy_key": job.strategy.key,
        "width_limit": job.width_limit,
        "label": job.label,
        "pulse_backend": job.pulse_backend,
    }
    if job.device is not None:
        payload["device"] = device_to_dict(job.device)
    if job.topology is not None:
        payload["topology"] = topology_to_dict(job.topology)
    return _envelope("job", payload)


def batch_job_from_dict(payload: dict):
    from repro.compiler.batch import BatchJob

    payload = _check(payload, "job")
    return BatchJob(
        circuit=circuit_from_dict(payload["circuit"]),
        strategy=payload["strategy_key"],
        width_limit=payload.get("width_limit"),
        label=payload.get("label"),
        pulse_backend=payload.get("pulse_backend"),
        device=(
            device_from_dict(payload["device"])
            if "device" in payload
            else None
        ),
        topology=(
            topology_from_dict(payload["topology"])
            if "topology" in payload
            else None
        ),
    )


def job_status_to_dict(status: dict) -> dict:
    """Wire form of one service job's status report.

    The payload is already flat JSON-safe scalars (state, timestamps,
    attempt count, error text, per-pass timing); the envelope adds the
    format/kind header so status reports travel the same channels as
    every other artifact.
    """
    return _envelope("job_status", {"status": dict(status)})


def job_status_from_dict(payload: dict) -> dict:
    payload = _check(payload, "job_status")
    return dict(payload["status"])


def service_stats_to_dict(stats: dict) -> dict:
    """Wire form of the compile service's ``stats()`` dict (see
    :meth:`repro.service.server.CompileService.stats`)."""
    return _envelope("service_stats", {"stats": dict(stats)})


def service_stats_from_dict(payload: dict) -> dict:
    payload = _check(payload, "service_stats")
    return dict(payload["stats"])


# ----------------------------------------------------------------------
# Generic JSON envelope

_LOADERS = {
    "gate": gate_from_dict,
    "instruction": instruction_from_dict,
    "circuit": circuit_from_dict,
    "topology": topology_from_dict,
    "device_config": device_config_from_dict,
    "compiler_config": compiler_config_from_dict,
    "device": device_from_dict,
    "schedule": schedule_from_dict,
    "pulse": pulse_from_dict,
    "grape_result": grape_result_from_dict,
    "cache_delta": cache_delta_from_dict,
    "cache_stats": cache_stats_from_dict,
    "result": result_from_dict,
    "job": batch_job_from_dict,
    "job_status": job_status_from_dict,
    "service_stats": service_stats_from_dict,
}

_DUMPERS = (
    ("circuit", Circuit, circuit_to_dict),
    ("gate", Gate, gate_to_dict),
    ("topology", Topology, topology_to_dict),
    ("device", Device, device_to_dict),
    ("device_config", DeviceConfig, device_config_to_dict),
    ("compiler_config", CompilerConfig, compiler_config_to_dict),
    ("pulse", Pulse, pulse_to_dict),
    ("grape_result", GrapeResult, grape_result_to_dict),
)


def dumps(artifact, indent: int | None = None) -> str:
    """JSON text of any supported artifact (dispatch on its type)."""
    payload = _payload_of(artifact)
    return json.dumps(payload, indent=indent)


def _payload_of(artifact) -> dict:
    from repro.aggregation.instruction import AggregatedInstruction
    from repro.compiler.batch import BatchJob
    from repro.compiler.result import CompilationResult
    from repro.control.cache import CacheDelta
    from repro.scheduling.schedule import Schedule

    if isinstance(artifact, dict):
        return artifact
    if isinstance(artifact, CompilationResult):
        return result_to_dict(artifact)
    if isinstance(artifact, BatchJob):
        return batch_job_to_dict(artifact)
    if isinstance(artifact, Schedule):
        return schedule_to_dict(artifact)
    if isinstance(artifact, AggregatedInstruction):
        return instruction_to_dict(artifact)
    if isinstance(artifact, CacheDelta):
        return cache_delta_to_dict(artifact)
    for _, cls, dumper in _DUMPERS:
        if isinstance(artifact, cls):
            return dumper(artifact)
    raise SerializationError(
        f"no wire format for {type(artifact).__name__} objects"
    )


def loads(text: str) -> object:
    """Rebuild any artifact from its JSON text (dispatch on ``kind``)."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise SerializationError(f"not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise SerializationError(
            f"expected a payload object, got {type(payload).__name__}"
        )
    kind = payload.get("kind")
    loader = _LOADERS.get(kind)
    if loader is None:
        raise SerializationError(
            f"unknown artifact kind {kind!r}; known: {', '.join(sorted(_LOADERS))}"
        )
    return loader(payload)
