"""Entry-point analyzers: run the rule packs over concrete artifacts.

Each ``analyze_*`` function adapts one artifact kind to the rule
registry and returns an :class:`~repro.analysis.core.AnalysisReport`.
Composite artifacts (compilation results, live contexts) fold several
packs into one report.  Nothing here compiles, prices or optimizes —
analysis is read-only and GRAPE-free.
"""

from __future__ import annotations

import repro.analysis.packs  # noqa: F401  (registers all rules)
from repro.analysis.core import AnalysisReport, Severity, rule_by_id, run_rules
from repro.analysis.packs.transition import snapshot_context


def analyze_circuit(circuit) -> AnalysisReport:
    """Lint a :class:`~repro.circuit.circuit.Circuit` (well-formedness)."""
    return run_rules(
        "circuit",
        list(circuit.gates),
        f"circuit {circuit.name!r}",
        {"num_qubits": circuit.num_qubits},
    )


def analyze_nodes(nodes, num_qubits: int, label: str = "nodes") -> AnalysisReport:
    """Lint a bare node list (gates or blocks) against a register width."""
    return run_rules("circuit", list(nodes), label, {"num_qubits": num_qubits})


def analyze_dag(dag, label: str = "dag") -> AnalysisReport:
    """Check a gate-dependence graph's structural invariants."""
    return run_rules("dag", dag, label)


def analyze_routing(nodes, topology, label: str = "routing") -> AnalysisReport:
    """Check routed physical nodes against a coupling graph."""
    return run_rules("routing", list(nodes), label, {"topology": topology})


def analyze_aggregation(
    nodes, width_limit: int | None = None, label: str = "aggregation"
) -> AnalysisReport:
    """Check aggregated instructions (width, diagonality claims)."""
    return run_rules(
        "aggregation", list(nodes), label, {"width_limit": width_limit}
    )


def analyze_schedule(
    schedule, *, dag=None, label: str = "schedule"
) -> AnalysisReport:
    """Check a schedule's timing invariants.

    ``dag`` supplies dependence structure for REP142; without it only
    the single-artifact rules (overlap, ids, times, ranges) run.
    """
    return run_rules("schedule", schedule, label, {"dag": dag})


def analyze_result(
    result, *, device=None, width_limit: int | None = None
) -> AnalysisReport:
    """Lint a full :class:`~repro.compiler.result.CompilationResult`.

    Composes the result, schedule, circuit and aggregation packs over
    the embedded artifacts.  Routing legality runs when a device is
    known — pass one explicitly, or let the analyzer resolve the
    recorded ``device_name`` against the preset registry; otherwise the
    report carries an INFO note (REP120) that REP12x coverage is
    missing.  ``width_limit`` enables the aggregation width rule (the
    limit is not recorded in the artifact, so there is no safe default).
    """
    label = f"result {result.circuit_name!r} [{result.strategy_key}]"
    report = run_rules("result", result, label)
    report.extend(
        analyze_schedule(result.schedule, label=f"{label} schedule")
    )
    nodes = [operation.node for operation in result.schedule]
    report.extend(
        analyze_nodes(
            nodes, result.schedule.num_qubits, label=f"{label} nodes"
        )
    )
    report.extend(
        analyze_aggregation(
            nodes, width_limit=width_limit, label=f"{label} blocks"
        )
    )

    topology = None
    if device is not None:
        topology = device.topology
    elif result.device_name is not None:
        from repro.device.presets import device_by_key
        from repro.errors import ConfigError

        try:
            topology = device_by_key(result.device_name).topology
        except ConfigError:
            topology = None
    if topology is not None:
        report.extend(
            analyze_routing(nodes, topology, label=f"{label} routing")
        )
    else:
        note = rule_by_id("REP120")
        report.violations.append(
            note.violation(
                f"no resolvable device for "
                f"{result.device_name!r}: REP12x routing rules skipped",
                severity=Severity.INFO,
            )
        )
        report.checked_rules = (*report.checked_rules, "REP120")
    return report


def analyze_context(
    context, *, snapshot_before=None, pass_name: str | None = None
) -> AnalysisReport:
    """Check every invariant a live compilation context can support.

    Used by the ``verify_ir`` debug mode after each pass: runs the
    artifact packs over whatever IR exists so far, plus the transition
    rules when a pre-pass ``snapshot_before`` is given (gate-preserving
    passes only — see :mod:`repro.analysis.packs.transition`).
    """
    where = f" after {pass_name}" if pass_name else ""
    label = f"context {context.circuit.name!r}{where}"
    report = AnalysisReport(subject=label)

    if context.physical_dag is not None:
        dag = context.physical_dag
        report.extend(analyze_dag(dag, label=f"{label} physical dag"))
        nodes = dag.nodes
        width = dag.num_qubits
        domain = "physical"
    elif context.physical_nodes is not None:
        nodes = context.physical_nodes
        width = (
            context.topology.num_qubits
            if context.topology is not None
            else context.circuit.num_qubits
        )
        domain = "physical"
    elif context.nodes is not None:
        nodes = context.nodes
        width = context.circuit.num_qubits
        domain = "logical"
    else:
        nodes = None
        width = context.circuit.num_qubits
        domain = "logical"

    if nodes is not None:
        report.extend(analyze_nodes(nodes, width, label=f"{label} nodes"))
        report.extend(
            analyze_aggregation(
                nodes,
                width_limit=context.width_limit,
                label=f"{label} blocks",
            )
        )
        if domain == "physical" and context.topology is not None:
            report.extend(
                analyze_routing(
                    nodes, context.topology, label=f"{label} routing"
                )
            )
    if context.logical_dag is not None:
        report.extend(
            analyze_dag(context.logical_dag, label=f"{label} logical dag")
        )
    if context.schedule is not None:
        report.extend(
            analyze_schedule(
                context.schedule,
                dag=context.physical_dag,
                label=f"{label} schedule",
            )
        )
    if snapshot_before is not None:
        after = snapshot_context(context)
        report.extend(
            run_rules(
                "transition",
                (snapshot_before, after),
                f"{label} transition",
                {"checker": context.checker, "pass_name": pass_name or "pass"},
            )
        )
    return report
