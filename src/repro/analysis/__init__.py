"""Static analysis over compiler IR: rules, verifiers, contracts.

Two halves:

* **IR verifier** — declarative rules with stable IDs (``REP1xx``) over
  every artifact kind (circuits, dependence graphs, routed nodes,
  aggregation blocks, schedules, results), runnable standalone
  (:func:`analyze_result` and friends, or ``python -m repro.analysis``)
  and between compiler passes (``verify_ir=True`` /
  :class:`VerifierPass`), where before/after snapshots additionally
  catch illegal reorders and dropped gates (``REP133``/``REP134`` — the
  PR 4 splice-merge bug class).
* **Pipeline contract analyzer** — ``REP2xx`` rules over
  ``Pass.requires``/``Pass.produces`` declarations:
  :func:`analyze_pipeline` statically rejects misordered pass lists
  with no compilation, and runs automatically at strategy-registration
  time.

Analysis never mutates its subject and never invokes optimal control.
"""

from repro.analysis.core import (
    AnalysisReport,
    Rule,
    Severity,
    Violation,
    all_rules,
    rule_by_id,
    rules_for,
)
from repro.analysis.contracts import (
    analyze_pipeline,
    check_pipeline,
    producers_of,
)
from repro.analysis.verify import (
    analyze_aggregation,
    analyze_circuit,
    analyze_context,
    analyze_dag,
    analyze_nodes,
    analyze_result,
    analyze_routing,
    analyze_schedule,
)
from repro.analysis.verifier import PipelineVerifier, VerifierPass
from repro.analysis.lint import lint_path

__all__ = [
    "AnalysisReport",
    "Rule",
    "Severity",
    "Violation",
    "all_rules",
    "rule_by_id",
    "rules_for",
    "analyze_pipeline",
    "check_pipeline",
    "producers_of",
    "analyze_aggregation",
    "analyze_circuit",
    "analyze_context",
    "analyze_dag",
    "analyze_nodes",
    "analyze_result",
    "analyze_routing",
    "analyze_schedule",
    "PipelineVerifier",
    "VerifierPass",
    "lint_path",
]
