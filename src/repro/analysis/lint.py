"""File-level linting: run the rule packs over saved artifacts.

Accepts the formats the repository produces: ``repro-ir-v1`` JSON
envelopes (any kind :mod:`repro.ir.serialize` can load) and ``.qasm``
files in the supported dialect.  Loading never compiles and never
invokes optimal control — a result artifact lints from its recorded
schedule alone.
"""

from __future__ import annotations

import os

from repro.analysis.core import AnalysisReport
from repro.analysis.verify import (
    analyze_circuit,
    analyze_nodes,
    analyze_result,
    analyze_schedule,
)
from repro.errors import AnalysisError, ReproError


def _lint_artifact(text: str, label: str, width_limit: int | None):
    from repro.aggregation.instruction import AggregatedInstruction
    from repro.circuit.circuit import Circuit
    from repro.compiler.result import CompilationResult
    from repro.gates.gate import Gate
    from repro.ir.serialize import loads
    from repro.scheduling.schedule import Schedule

    artifact = loads(text)
    if isinstance(artifact, CompilationResult):
        report = analyze_result(artifact, width_limit=width_limit)
    elif isinstance(artifact, Circuit):
        report = analyze_circuit(artifact)
    elif isinstance(artifact, Schedule):
        report = analyze_schedule(artifact)
    elif isinstance(artifact, (Gate, AggregatedInstruction)):
        report = analyze_nodes(
            [artifact],
            max(artifact.qubits) + 1,
            label=type(artifact).__name__.lower(),
        )
    else:
        raise AnalysisError(
            f"no lint rules for {type(artifact).__name__} artifacts "
            f"in {label}"
        )
    report.subject = f"{label}: {report.subject}"
    return report


def lint_path(path: str, *, width_limit: int | None = None) -> AnalysisReport:
    """Lint one file; the extension picks the loader.

    Args:
        path: A ``.json`` ``repro-ir-v1`` artifact or a ``.qasm`` file.
        width_limit: Enables the aggregation width rule (REP131) for
            result artifacts; the limit is not recorded on the wire, so
            it is off unless given.

    Returns:
        The combined :class:`AnalysisReport` (truthy iff no ERROR).

    Raises:
        AnalysisError: Unreadable file, unknown extension, malformed
            payload, or an artifact kind with no lint rules.
    """
    extension = os.path.splitext(path)[1].lower()
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise AnalysisError(f"cannot read {path!r}: {error}") from error

    if extension == ".qasm":
        from repro.circuit.qasm import parse_qasm

        try:
            circuit = parse_qasm(text)
        except ReproError as error:
            raise AnalysisError(
                f"{path!r} is not parseable QASM: {error}"
            ) from error
        report = analyze_circuit(circuit)
        report.subject = f"{path}: {report.subject}"
        return report

    if extension == ".json":
        try:
            return _lint_artifact(text, path, width_limit)
        except AnalysisError:
            raise
        except ReproError as error:
            raise AnalysisError(
                f"{path!r} is not a loadable repro-ir-v1 artifact: {error}"
            ) from error

    raise AnalysisError(
        f"cannot lint {path!r}: expected a .json artifact or .qasm file"
    )
