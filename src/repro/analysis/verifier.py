"""The between-pass IR verifier (``verify_ir`` debug mode).

:class:`PipelineVerifier` is the hook object
:class:`~repro.compiler.manager.PassManager` drives when constructed
with ``verify_ir=True``: before each gate-preserving pass it snapshots
the IR, after *every* pass it runs
:func:`~repro.analysis.verify.analyze_context` and raises
:class:`~repro.errors.IRVerificationError` on the first ERROR-severity
violation — attributing a corruption to the pass that introduced it
instead of to the end-of-pipeline equivalence check.

:class:`VerifierPass` packages one verification sweep as an ordinary
pass, so pipelines can also opt in at chosen points::

    pipeline = [*default_pipeline(CLS), VerifierPass()]
"""

from __future__ import annotations

from repro.analysis.core import AnalysisReport
from repro.analysis.packs.transition import snapshot_context
from repro.analysis.verify import analyze_context
from repro.compiler.passes import Pass
from repro.errors import IRVerificationError


def _raise_for(report: AnalysisReport, pass_name: str, pass_index: int | None):
    rule_ids = tuple(sorted({v.rule_id for v in report.errors}))
    details = "; ".join(v.describe() for v in report.errors[:8])
    position = (
        f" (pipeline position {pass_index})" if pass_index is not None else ""
    )
    raise IRVerificationError(
        f"IR invariants broken after pass {pass_name}{position}: {details}",
        pass_name=pass_name,
        pass_index=pass_index,
        rule_ids=rule_ids,
    )


class PipelineVerifier:
    """Snapshots and checks the IR around every pass of a pipeline.

    Attributes:
        reports: ``(pass_name, report)`` per verified pass, in order.
        raise_on_error: When False, errors accumulate in ``reports``
            instead of raising (used by tooling that wants the full
            picture rather than fail-fast attribution).
    """

    def __init__(self, *, raise_on_error: bool = True) -> None:
        self.raise_on_error = raise_on_error
        self.reports: list[tuple[str, AnalysisReport]] = []
        self._snapshot = None

    def before_pass(self, pass_, index: int, context) -> None:
        # Transition rules only apply to passes declaring that they keep
        # the gate multiset; snapshotting around the others would either
        # be meaningless (lowering invents gates) or compare different
        # qubit domains (placement renumbers everything).
        if getattr(pass_, "preserves_gates", False):
            self._snapshot = snapshot_context(context)
        else:
            self._snapshot = None

    def after_pass(self, pass_, index: int, context) -> None:
        snapshot, self._snapshot = self._snapshot, None
        report = analyze_context(
            context, snapshot_before=snapshot, pass_name=pass_.name
        )
        self.reports.append((pass_.name, report))
        if report.violations:
            context.record_metrics(
                pass_.name,
                verify_ir_rule_ids=report.fired_rule_ids(),
                verify_ir_errors=len(report.errors),
                verify_ir_warnings=len(report.warnings),
            )
        if report.errors and self.raise_on_error:
            _raise_for(report, pass_.name, index)

    def violations(self):
        """Every violation across all verified passes."""
        return [
            violation
            for _, report in self.reports
            for violation in report.violations
        ]


class VerifierPass(Pass):
    """Run one full IR-invariant sweep at this point of the pipeline."""

    stage = "verification"
    requires: tuple[str, ...] = ()
    produces: tuple[str, ...] = ()
    preserves_gates = True

    def run(self, context) -> None:
        report = analyze_context(context, pass_name=self.name)
        context.record_metrics(
            self.name,
            verify_ir_rule_ids=report.fired_rule_ids(),
            verify_ir_errors=len(report.errors),
            verify_ir_warnings=len(report.warnings),
        )
        if report.errors:
            _raise_for(report, self.name, None)
