"""Pipeline-contract rules (REP20x).

The ``"pipeline"`` kind runs over a *list of pass instances* — no
context, no compilation.  Options: ``strategy_key`` for messages,
``require_result`` (default True) demanding the pipeline end in a state
:meth:`CompilationContext.result` accepts.
"""

from __future__ import annotations

from repro.analysis.core import Severity, rule
from repro.analysis.contracts import (
    INITIAL_FIELDS,
    RESULT_FIELDS,
    contract_of,
    missing_field_hint,
)


def _is_pass(entry) -> bool:
    from repro.compiler.passes import Pass

    return isinstance(entry, Pass)


@rule(
    "REP201",
    "pipeline",
    Severity.ERROR,
    "every pass's requires is produced by an earlier pass",
)
def _requirements_met(rule_obj, passes, options):
    available = set(INITIAL_FIELDS)
    for index, pass_ in enumerate(passes):
        if not _is_pass(pass_):
            continue  # REP203's finding
        requires, produces = contract_of(pass_)
        name = getattr(pass_, "name", type(pass_).__name__)
        for field in requires:
            if field not in available:
                yield rule_obj.violation(
                    f"{name} requires context.{field}, which no earlier "
                    f"pass produces ({missing_field_hint(field)})",
                    location=f"position {index}",
                )
        available.update(produces)


@rule(
    "REP202",
    "pipeline",
    Severity.ERROR,
    "the pipeline produces a complete compilation result",
)
def _result_complete(rule_obj, passes, options):
    if not options.get("require_result", True):
        return
    available = set(INITIAL_FIELDS)
    for pass_ in passes:
        if _is_pass(pass_):
            available.update(contract_of(pass_)[1])
    missing = sorted(RESULT_FIELDS - available)
    for field in missing:
        yield rule_obj.violation(
            f"no pass produces context.{field} "
            f"({missing_field_hint(field)}), so "
            f"CompilationContext.result() cannot run",
        )


@rule("REP203", "pipeline", Severity.ERROR, "pipeline entries are passes")
def _entries_are_passes(rule_obj, passes, options):
    for index, entry in enumerate(passes):
        if not _is_pass(entry):
            yield rule_obj.violation(
                f"pipeline entry {entry!r} is not a Pass instance",
                location=f"position {index}",
            )
