"""Circuit well-formedness rules (REP10x).

The ``"circuit"`` kind runs over any *sequence of nodes* — plain
:class:`~repro.gates.gate.Gate` objects or aggregated instructions —
with ``options["num_qubits"]`` giving the register width.  The public
entry point :func:`repro.analysis.analyze_circuit` adapts a
:class:`~repro.circuit.circuit.Circuit` to this shape; the between-pass
verifier feeds it the evolving node list directly.
"""

from __future__ import annotations

import math

from repro.analysis.core import Severity, rule
from repro.linalg.predicates import is_unitary

#: Widest node whose matrix the unitarity rule checks exactly.  Matches
#: the aggregation dense-matrix limit: wider instructions report
#: ``matrix is None`` and are skipped.
UNITARY_CHECK_QUBIT_LIMIT = 6


def _nodes(subject) -> list:
    return list(subject)


@rule("REP101", "circuit", Severity.ERROR, "qubit indices within the register")
def _qubits_in_range(rule_obj, subject, options):
    num_qubits = options.get("num_qubits")
    for position, node in enumerate(_nodes(subject)):
        qubits = tuple(node.qubits)
        seen = set()
        for q in qubits:
            if q in seen:
                yield rule_obj.violation(
                    f"{node!r} names qubit {q} twice",
                    location=f"node {position}",
                )
            seen.add(q)
            if q < 0 or (num_qubits is not None and q >= num_qubits):
                yield rule_obj.violation(
                    f"{node!r} acts on qubit {q}, outside the "
                    f"{num_qubits}-qubit register",
                    location=f"node {position}",
                )


@rule("REP102", "circuit", Severity.ERROR, "gate parameters finite")
def _params_finite(rule_obj, subject, options):
    for position, node in enumerate(_nodes(subject)):
        for param in getattr(node, "params", ()):
            if not math.isfinite(param):
                yield rule_obj.violation(
                    f"{node!r} has non-finite parameter {param!r}",
                    location=f"node {position}",
                )


@rule("REP103", "circuit", Severity.ERROR, "node matrices unitary")
def _matrices_unitary(rule_obj, subject, options):
    for position, node in enumerate(_nodes(subject)):
        if len(set(node.qubits)) > UNITARY_CHECK_QUBIT_LIMIT:
            continue
        matrix = getattr(node, "matrix", None)
        if matrix is None:
            continue
        dimension = 2 ** len(set(node.qubits))
        if matrix.shape != (dimension, dimension):
            yield rule_obj.violation(
                f"{node!r} matrix has shape {matrix.shape}, expected "
                f"({dimension}, {dimension})",
                location=f"node {position}",
            )
        elif not is_unitary(matrix, atol=1e-7):
            yield rule_obj.violation(
                f"{node!r} matrix is not unitary",
                location=f"node {position}",
            )
