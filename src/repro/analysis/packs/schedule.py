"""Schedule invariants (REP14x).

The ``"schedule"`` kind runs over a
:class:`~repro.scheduling.schedule.Schedule`.  ``options["dag"]``, when
present, supplies the dependence structure for REP142 (standalone lint
of a bare schedule artifact has no DAG, so that rule reports nothing).
"""

from __future__ import annotations

from collections import Counter

from repro.analysis.core import Severity, rule
from repro.ir.timed import DEPENDENCE_EPSILON_NS


@rule("REP141", "schedule", Severity.ERROR, "no same-qubit overlap")
def _no_overlap(rule_obj, schedule, options):
    for qubit in range(schedule.num_qubits):
        timeline = schedule.qubit_timeline(qubit)
        for first, second in zip(timeline, timeline[1:]):
            if first.overlaps(second):
                yield rule_obj.violation(
                    f"{first.node!r} [{first.start}, {first.end}) overlaps "
                    f"{second.node!r} [{second.start}, {second.end}) on "
                    f"qubit {qubit}",
                    location=f"qubit {qubit}",
                )


@rule("REP142", "schedule", Severity.ERROR, "dependence edges respected")
def _dependences_respected(rule_obj, schedule, options):
    dag = options.get("dag")
    if dag is None:
        return
    finish = {op.node: op.end for op in schedule.operations}
    start = {op.node: op.start for op in schedule.operations}
    dag_nodes = {id(node) for node in dag.nodes}
    commute = getattr(dag, "commute_fn", None)
    for operation in schedule.operations:
        if id(operation.node) not in dag_nodes:
            continue  # node outside the DAG: nothing to order against
        for predecessor in dag.predecessors(operation.node):
            if predecessor not in finish:
                yield rule_obj.violation(
                    f"{operation.node!r} is scheduled but its predecessor "
                    f"{predecessor!r} is not",
                    location=f"node_id {operation.node_id}",
                )
            elif finish[predecessor] > (
                start[operation.node] + DEPENDENCE_EPSILON_NS
            ):
                # CLS may flip a commuting pair without touching the
                # DAG's chains: the chain edge is then ordering freedom,
                # not a dependence.  (Same-qubit *overlap* would still
                # be illegal — REP141 covers that.)
                if commute is not None and commute(
                    predecessor, operation.node
                ):
                    continue
                yield rule_obj.violation(
                    f"{operation.node!r} starts at {start[operation.node]} "
                    f"before predecessor {predecessor!r} finishes at "
                    f"{finish[predecessor]}",
                    location=f"node_id {operation.node_id}",
                )


@rule("REP143", "schedule", Severity.ERROR, "node_ids unique and stable")
def _node_ids_stable(rule_obj, schedule, options):
    ids = [op.node_id for op in schedule.operations]
    for node_id, count in sorted(Counter(ids).items()):
        if count > 1:
            yield rule_obj.violation(
                f"node_id {node_id} assigned to {count} operations",
            )
    if ids and sorted(set(ids)) != list(range(len(set(ids)))):
        yield rule_obj.violation(
            f"node_ids are not the stable insertion indices "
            f"0..{len(ids) - 1}: got {sorted(set(ids))[:8]}...",
        )


@rule("REP144", "schedule", Severity.ERROR, "times non-negative")
def _times_non_negative(rule_obj, schedule, options):
    for operation in schedule.operations:
        if operation.start < 0 or operation.duration < 0:
            yield rule_obj.violation(
                f"{operation.node!r} has start {operation.start} and "
                f"duration {operation.duration}",
                location=f"node_id {operation.node_id}",
            )


@rule("REP145", "schedule", Severity.ERROR, "scheduled qubits within register")
def _qubits_in_register(rule_obj, schedule, options):
    for operation in schedule.operations:
        for q in operation.node.qubits:
            if q < 0 or q >= schedule.num_qubits:
                yield rule_obj.violation(
                    f"{operation.node!r} acts on qubit {q}, outside the "
                    f"{schedule.num_qubits}-qubit schedule",
                    location=f"node_id {operation.node_id}",
                )
