"""Concrete rule packs.

Importing this package registers every shipped rule with the registry in
:mod:`repro.analysis.core`; the submodules have no other side effects.
"""

from repro.analysis.packs import (  # noqa: F401
    aggregation,
    circuit,
    dag,
    pipeline,
    result,
    routing,
    schedule,
    transition,
)
