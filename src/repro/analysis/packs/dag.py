"""Gate-dependence-graph invariants (REP11x).

The ``"dag"`` kind runs over a
:class:`~repro.circuit.dag.GateDependenceGraph`.  These rules inspect
the GDG's internal representation (per-qubit order lists, cached
commutation groups) on purpose: the verifier's job is exactly to catch
a pass that corrupted that representation, so going through the public
accessors — which recompute lazily — would hide the corruption.
"""

from __future__ import annotations

from repro.analysis.core import Severity, rule


@rule("REP111", "dag", Severity.ERROR, "dependence graph acyclic")
def _acyclic(rule_obj, dag, options):
    # Kahn's algorithm over the per-qubit chain edges.  A well-formed
    # GDG is trivially acyclic (every qubit chain orders nodes the same
    # way the global list does); a cycle means two qubit chains order a
    # pair of nodes inconsistently.
    indegree: dict[int, int] = {id(node): 0 for node in dag.nodes}
    successors: dict[int, list] = {id(node): [] for node in dag.nodes}
    by_id = {id(node): node for node in dag.nodes}
    for qubit in range(dag.num_qubits):
        chain = dag._qubit_order[qubit]
        for first, second in zip(chain, chain[1:]):
            successors[id(first)].append(second)
            indegree[id(second)] += 1
    ready = [node for node in dag.nodes if indegree[id(node)] == 0]
    visited = 0
    while ready:
        node = ready.pop()
        visited += 1
        for successor in successors[id(node)]:
            indegree[id(successor)] -= 1
            if indegree[id(successor)] == 0:
                ready.append(successor)
    if visited != len(dag.nodes):
        stuck = [by_id[i] for i, d in indegree.items() if d > 0]
        yield rule_obj.violation(
            f"dependence edges form a cycle through {len(stuck)} node(s): "
            f"{', '.join(repr(node) for node in stuck[:4])}"
            f"{', ...' if len(stuck) > 4 else ''}",
        )


@rule(
    "REP112",
    "dag",
    Severity.ERROR,
    "cached commutation groups consistent with the commutation table",
)
def _groups_consistent(rule_obj, dag, options):
    # Only qubits with a *trusted* cache are checkable: a dirty qubit
    # recomputes from commute_fn on access, which is tautologically
    # consistent.  A pass that pokes ``_groups`` without marking the
    # qubit dirty is exactly the corruption this rule exists to catch.
    for qubit, groups in dag._groups.items():
        if qubit in dag._groups_dirty:
            continue
        flattened = [node for group in groups for node in group]
        if [id(n) for n in flattened] != [id(n) for n in dag._qubit_order[qubit]]:
            yield rule_obj.violation(
                f"cached groups on qubit {qubit} do not partition the "
                f"qubit's node order",
                location=f"qubit {qubit}",
            )
            continue
        for index, group in enumerate(groups):
            for position, node in enumerate(group):
                for other in group[position + 1 :]:
                    if not dag.commute_fn(node, other):
                        yield rule_obj.violation(
                            f"group {index} on qubit {qubit} holds "
                            f"non-commuting nodes {node!r} and {other!r}",
                            location=f"qubit {qubit}",
                        )
        mapping = dag._group_of.get(qubit, {})
        for index, group in enumerate(groups):
            for node in group:
                recorded = mapping.get(id(node))
                if recorded != index:
                    yield rule_obj.violation(
                        f"{node!r} sits in group {index} on qubit {qubit} "
                        f"but the group index map says {recorded}",
                        location=f"qubit {qubit}",
                    )


@rule(
    "REP113",
    "dag",
    Severity.ERROR,
    "per-qubit order lists consistent with the node list and chain links",
)
def _order_consistent(rule_obj, dag, options):
    # Membership, not order: after splice-merges the global ``nodes``
    # list is only a bag of the live nodes (the per-qubit chains are the
    # source of truth for order, and ``topological_order()`` the valid
    # linearization), so each chain must hold exactly the global nodes
    # touching its qubit — once each — without prescribing their
    # position in the global list.
    node_ids = {id(node) for node in dag.nodes}
    for qubit in range(dag.num_qubits):
        chain = dag._qubit_order[qubit]
        chain_ids = [id(n) for n in chain]
        if len(chain_ids) != len(set(chain_ids)):
            yield rule_obj.violation(
                f"qubit {qubit} order list repeats a node",
                location=f"qubit {qubit}",
            )
        expected = {
            id(node) for node in dag.nodes if qubit in node.qubits
        }
        missing = expected - set(chain_ids)
        if missing:
            yield rule_obj.violation(
                f"qubit {qubit} order list is missing {len(missing)} "
                f"node(s) that act on it",
                location=f"qubit {qubit}",
            )
        for node in chain:
            if id(node) not in node_ids:
                yield rule_obj.violation(
                    f"qubit {qubit} order list holds {node!r}, which is "
                    f"not in the node list",
                    location=f"qubit {qubit}",
                )
        for first, second in zip(chain, chain[1:]):
            if dag._next[qubit].get(id(first)) is not second or (
                dag._prev[qubit].get(id(second)) is not first
            ):
                yield rule_obj.violation(
                    f"chain links on qubit {qubit} disagree with the order "
                    f"list between {first!r} and {second!r}",
                    location=f"qubit {qubit}",
                )
