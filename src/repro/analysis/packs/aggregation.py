"""Aggregation legality rules (REP13x, artifact half).

The ``"aggregation"`` kind runs over a *sequence of nodes*;
``options["width_limit"]`` bounds instruction width (None disables the
width rule).  The transition half of the aggregation contract — merged
nodes respect commutation-group boundaries, the PR 4 bug class — lives
in :mod:`repro.analysis.packs.transition` because it needs before/after
snapshots, not a single artifact.
"""

from __future__ import annotations

from repro.analysis.core import Severity, rule
from repro.linalg.predicates import is_diagonal as _matrix_is_diagonal


def _claimed_diagonal(node) -> bool | None:
    """The node's *cached* diagonality claim, or None when unclaimed.

    Both :class:`~repro.gates.gate.Gate` (manual ``_is_diagonal``
    memo) and aggregated instructions (``functools.cached_property``)
    memoize into ``__dict__``; an absent memo means any later query
    would recompute honestly, so there is nothing to cross-check.
    """
    cache = getattr(node, "__dict__", {})
    if "is_diagonal" in cache:
        return bool(cache["is_diagonal"])
    if "_is_diagonal" in cache:
        return bool(cache["_is_diagonal"])
    return None


@rule("REP131", "aggregation", Severity.ERROR, "block width within width_limit")
def _width_within_limit(rule_obj, subject, options):
    width_limit = options.get("width_limit")
    if width_limit is None:
        return
    for position, node in enumerate(subject):
        if not hasattr(node, "gates"):
            continue  # plain gates are not aggregation products
        width = len(set(node.qubits))
        if width > width_limit:
            yield rule_obj.violation(
                f"{node!r} spans {width} qubits, over the aggregation "
                f"width limit of {width_limit}",
                location=f"node {position}",
            )


@rule(
    "REP132",
    "aggregation",
    Severity.ERROR,
    "claimed-diagonal nodes verifiably diagonal",
)
def _diagonal_claims_true(rule_obj, subject, options):
    for position, node in enumerate(subject):
        claim = _claimed_diagonal(node)
        if claim is not True:
            continue
        matrix = getattr(node, "matrix", None)
        if matrix is None:
            yield rule_obj.violation(
                f"{node!r} claims diagonality but is too wide to verify",
                location=f"node {position}",
                severity=Severity.WARNING,
            )
        elif not _matrix_is_diagonal(matrix):
            yield rule_obj.violation(
                f"{node!r} claims to be diagonal but its matrix is not",
                location=f"node {position}",
            )
