"""Compilation-result consistency rules (REP15x).

The ``"result"`` kind runs over a
:class:`~repro.compiler.result.CompilationResult`.  These are the
*cross-field* invariants; the embedded schedule, nodes and mappings are
additionally checked by the circuit/aggregation/schedule/routing packs,
which :func:`repro.analysis.analyze_result` composes.
"""

from __future__ import annotations

import math

from repro.analysis.core import Severity, rule


@rule(
    "REP151",
    "result",
    Severity.ERROR,
    "recorded latency matches the schedule makespan",
)
def _latency_matches(rule_obj, result, options):
    makespan = result.schedule.makespan
    if not math.isclose(
        result.latency_ns, makespan, rel_tol=1e-9, abs_tol=1e-6
    ):
        yield rule_obj.violation(
            f"latency_ns is {result.latency_ns} but the schedule makespan "
            f"is {makespan}",
        )


@rule("REP152", "result", Severity.ERROR, "qubit mappings injective and in range")
def _mappings_sound(rule_obj, result, options):
    for label, mapping in (
        ("initial_mapping", result.initial_mapping),
        ("final_mapping", result.final_mapping),
    ):
        if not mapping:
            continue
        for logical, physical in mapping.items():
            if logical < 0 or logical >= result.logical_qubits:
                yield rule_obj.violation(
                    f"{label} maps logical qubit {logical}, outside the "
                    f"{result.logical_qubits}-qubit program",
                    location=label,
                )
            if physical < 0 or physical >= result.physical_qubits:
                yield rule_obj.violation(
                    f"{label} sends logical {logical} to physical "
                    f"{physical}, outside the {result.physical_qubits}-qubit "
                    f"device",
                    location=label,
                )
        if len(set(mapping.values())) != len(mapping):
            yield rule_obj.violation(
                f"{label} sends two logical qubits to the same physical "
                f"qubit: {mapping}",
                location=label,
            )


@rule("REP153", "result", Severity.ERROR, "device at least as wide as the program")
def _device_fits(rule_obj, result, options):
    if result.physical_qubits < result.logical_qubits:
        yield rule_obj.violation(
            f"{result.logical_qubits} logical qubits cannot fit the "
            f"{result.physical_qubits}-qubit device",
        )
    if result.schedule.num_qubits != result.physical_qubits:
        yield rule_obj.violation(
            f"schedule register is {result.schedule.num_qubits} qubits "
            f"but the device has {result.physical_qubits}",
        )
