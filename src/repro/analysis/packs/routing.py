"""Routing legality rules (REP12x).

The ``"routing"`` kind runs over a *sequence of physical nodes* with
``options["topology"]`` giving the
:class:`~repro.device.topology.Topology` the nodes were routed for.
"""

from __future__ import annotations

from repro.analysis.core import Severity, rule


def _support(node) -> tuple[int, ...]:
    return tuple(sorted(set(node.qubits)))


def _connected(qubits: tuple[int, ...], topology) -> bool:
    """True when the qubits induce a connected subgraph of the topology."""
    if len(qubits) <= 1:
        return True
    members = set(qubits)
    frontier = [qubits[0]]
    reached = {qubits[0]}
    while frontier:
        current = frontier.pop()
        for neighbor in topology.neighbors(current):
            if neighbor in members and neighbor not in reached:
                reached.add(neighbor)
                frontier.append(neighbor)
    return reached == members


@rule(
    "REP120",
    "note",
    Severity.INFO,
    "routing legality unchecked (target device unknown)",
)
def _routing_unchecked(rule_obj, subject, options):
    # Meta-rule: never runs through run_rules (kind "note"); the result
    # analyzer fires it manually when an artifact names no resolvable
    # device, so the report records that REP12x coverage is missing.
    return ()


@rule(
    "REP121",
    "routing",
    Severity.ERROR,
    "multi-qubit operations sit on coupled edges",
)
def _ops_on_edges(rule_obj, subject, options):
    topology = options["topology"]
    for position, node in enumerate(subject):
        support = _support(node)
        if len(support) < 2 or getattr(node, "name", "") == "SWAP":
            continue
        if any(q < 0 or q >= topology.num_qubits for q in support):
            continue  # REP123's finding
        if len(support) == 2:
            if not topology.are_adjacent(*support):
                yield rule_obj.violation(
                    f"{node!r} acts on qubits {support}, which are not "
                    f"coupled in {topology!r}",
                    location=f"node {position}",
                )
        elif not _connected(support, topology):
            yield rule_obj.violation(
                f"{node!r} spans qubits {support}, which are not a "
                f"connected region of {topology!r}",
                location=f"node {position}",
            )


@rule("REP122", "routing", Severity.ERROR, "SWAPs respect the topology")
def _swaps_on_edges(rule_obj, subject, options):
    topology = options["topology"]
    for position, node in enumerate(subject):
        if getattr(node, "name", "") != "SWAP":
            continue
        support = _support(node)
        if any(q < 0 or q >= topology.num_qubits for q in support):
            continue  # REP123's finding
        if len(support) == 2 and not topology.are_adjacent(*support):
            yield rule_obj.violation(
                f"routing inserted {node!r} on uncoupled qubits {support}",
                location=f"node {position}",
            )


@rule("REP123", "routing", Severity.ERROR, "qubits within the device")
def _qubits_on_device(rule_obj, subject, options):
    topology = options["topology"]
    for position, node in enumerate(subject):
        for q in _support(node):
            if q < 0 or q >= topology.num_qubits:
                yield rule_obj.violation(
                    f"{node!r} names physical qubit {q}, but the device "
                    f"has {topology.num_qubits}",
                    location=f"node {position}",
                )
