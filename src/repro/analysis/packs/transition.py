"""Between-pass transition rules (REP133/REP134) and IR snapshots.

These rules compare a *snapshot* of the evolving IR taken before a pass
with the state after it, for passes that declare
``preserves_gates = True`` (rewrites allowed to reorder and regroup the
underlying gates but not change them).  This is where the PR 4 bug
class lives: the splice-merge reordered gates across a commutation-group
boundary, which no single-artifact invariant can see — only the
before/after pair shows the illegal move.

The ``"transition"`` kind's subject is a ``(before, after)`` snapshot
pair; ``options`` carries the ``checker``
(:class:`~repro.verification.commutation.CommutationChecker`) and the
``pass_name`` for messages.

Soundness over completeness: a reorder is accepted when the two gates'
*pre-pass owning nodes* commute as blocks (the paper's legality rule —
member gates of commuting blocks may interleave arbitrarily), when the
gates themselves commute, or when the whole register is narrow enough
that the flattened before/after unitaries can be compared exactly.  An
unjustified reorder on a register too wide for the unitary backstop
downgrades to WARNING rather than ERROR.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.core import Severity, rule
from repro.errors import SchedulingError
from repro.linalg.embed import embed_operator
from repro.linalg.predicates import allclose_up_to_global_phase

#: Widest register whose flattened unitary the backstop computes.
UNITARY_BACKSTOP_QUBIT_LIMIT = 10


def _flatten(node) -> list:
    """The plain gates under a node (a gate, or an aggregated block)."""
    gates = getattr(node, "gates", None)
    if gates is None:
        return [node]
    flat: list = []
    for member in gates:
        flat.extend(_flatten(member))
    return flat


@dataclasses.dataclass
class IRSnapshot:
    """The gate-level view of one side of a pass boundary.

    Attributes:
        domain: ``"logical"`` or ``"physical"`` — snapshots from
            different domains are never compared (placement legitimately
            renumbers every qubit).
        num_qubits: Register width of the domain.
        nodes: The node list at snapshot time (gates or blocks).
        gates: Flattened plain gates, global program order.
        owner: ``id(gate) -> owning node`` at snapshot time.
        qubit_gates: Per-qubit flattened gate sequences.
    """

    domain: str
    num_qubits: int
    nodes: list
    gates: list
    owner: dict[int, object]
    qubit_gates: dict[int, list]

    @classmethod
    def of_nodes(cls, domain: str, num_qubits: int, nodes: list) -> IRSnapshot:
        gates: list = []
        owner: dict[int, object] = {}
        for node in nodes:
            for gate in _flatten(node):
                gates.append(gate)
                owner[id(gate)] = node
        qubit_gates: dict[int, list] = {q: [] for q in range(num_qubits)}
        for gate in gates:
            for q in gate.qubits:
                if 0 <= q < num_qubits:
                    qubit_gates[q].append(gate)
        return cls(
            domain=domain,
            num_qubits=num_qubits,
            nodes=list(nodes),
            gates=gates,
            owner=owner,
            qubit_gates=qubit_gates,
        )

    def unitary(self) -> np.ndarray | None:
        if self.num_qubits > UNITARY_BACKSTOP_QUBIT_LIMIT:
            return None
        total = np.eye(2**self.num_qubits, dtype=complex)
        for gate in self.gates:
            total = (
                embed_operator(gate.matrix, gate.qubits, self.num_qubits)
                @ total
            )
        return total


def snapshot_context(context) -> IRSnapshot | None:
    """Snapshot the gate-bearing state of a compilation context.

    Prefers the physical DAG (after aggregation it is the only holder of
    the merged truth — ``physical_nodes`` goes stale), then the physical
    node list, then the logical node list.  Returns None before lowering.
    """
    if context.physical_dag is not None:
        # ``dag.nodes`` is not a valid linearization after splice-merges
        # (the per-qubit chains are the source of truth); snapshot a
        # topological order so gate order reflects actual execution
        # order.  A cyclic (corrupt) graph falls back to the raw list —
        # REP111 reports the cycle itself.
        dag = context.physical_dag
        try:
            nodes = dag.stable_topological_order()
        except SchedulingError:
            nodes = dag.nodes
        return IRSnapshot.of_nodes("physical", dag.num_qubits, nodes)
    if context.physical_nodes is not None:
        width = (
            context.topology.num_qubits
            if context.topology is not None
            else context.circuit.num_qubits
        )
        return IRSnapshot.of_nodes("physical", width, context.physical_nodes)
    if context.nodes is not None:
        return IRSnapshot.of_nodes(
            "logical", context.circuit.num_qubits, context.nodes
        )
    return None


def _comparable(subject) -> tuple[IRSnapshot, IRSnapshot] | None:
    before, after = subject
    if before is None or after is None:
        return None
    if before.domain != after.domain or before.num_qubits != after.num_qubits:
        return None
    return before, after


@rule(
    "REP133",
    "transition",
    Severity.ERROR,
    "gate-preserving passes reorder only across commuting blocks",
)
def _reorders_justified(rule_obj, subject, options):
    pair = _comparable(subject)
    if pair is None:
        return
    before, after = pair
    checker = options.get("checker")
    pass_name = options.get("pass_name", "pass")

    suspects: list[tuple[int, object, object]] = []
    for qubit in range(before.num_qubits):
        pre_seq = [
            g for g in before.qubit_gates[qubit] if id(g) in after.owner
        ]
        position = {
            id(g): i for i, g in enumerate(after.qubit_gates[qubit])
        }
        pre_seq = [g for g in pre_seq if id(g) in position]
        for i, first in enumerate(pre_seq):
            for second in pre_seq[i + 1 :]:
                if position[id(first)] <= position[id(second)]:
                    continue
                # Flipped on this qubit.  Justified iff the *pre-pass
                # owning blocks* were distinct and commute (block-level
                # reorder), or the gates themselves commute.
                owner_a = before.owner[id(first)]
                owner_b = before.owner[id(second)]
                if (
                    owner_a is not owner_b
                    and checker is not None
                    and checker.commute(owner_a, owner_b)
                ):
                    continue
                if checker is not None and checker.commute(first, second):
                    continue
                suspects.append((qubit, first, second))

    if not suspects:
        return

    # Unitary backstop: a reorder no local rule can justify may still be
    # globally sound (e.g. conjugation patterns).  Only when the whole
    # program unitary changed is the transition reported as an ERROR.
    matrix_before = before.unitary()
    matrix_after = after.unitary() if matrix_before is not None else None
    if matrix_before is not None and matrix_after is not None:
        if allclose_up_to_global_phase(matrix_before, matrix_after):
            return
        severity = Severity.ERROR
        note = "and the program unitary changed"
    else:
        severity = Severity.WARNING
        note = (
            f"and the register is too wide "
            f"(> {UNITARY_BACKSTOP_QUBIT_LIMIT} qubits) to verify exactly"
        )
    for qubit, first, second in suspects[:8]:
        yield rule_obj.violation(
            f"{pass_name} moved {second!r} before {first!r} on qubit "
            f"{qubit}; neither the gates nor their pre-pass blocks "
            f"commute, {note}",
            location=f"qubit {qubit}",
            severity=severity,
        )


@rule(
    "REP134",
    "transition",
    Severity.ERROR,
    "gate-preserving passes keep the gate multiset",
)
def _gates_preserved(rule_obj, subject, options):
    pair = _comparable(subject)
    if pair is None:
        return
    before, after = pair
    pass_name = options.get("pass_name", "pass")
    ids_before = {id(g) for g in before.gates}
    ids_after = {id(g) for g in after.gates}
    dropped = [g for g in before.gates if id(g) not in ids_after]
    invented = [g for g in after.gates if id(g) not in ids_before]
    if dropped:
        yield rule_obj.violation(
            f"{pass_name} dropped {len(dropped)} gate(s): "
            f"{', '.join(repr(g) for g in dropped[:4])}"
            f"{', ...' if len(dropped) > 4 else ''}",
        )
    if invented:
        yield rule_obj.violation(
            f"{pass_name} introduced {len(invented)} gate(s): "
            f"{', '.join(repr(g) for g in invented[:4])}"
            f"{', ...' if len(invented) > 4 else ''}",
        )
    if len(after.gates) != len(ids_after):
        yield rule_obj.violation(
            f"{pass_name} duplicated gate objects in the node list",
        )
