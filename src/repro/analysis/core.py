"""The rule framework: severities, violations, reports, and the registry.

A :class:`Rule` is a named, stable-ID'd invariant over one artifact kind
(``"circuit"``, ``"dag"``, ``"routing"``, ``"aggregation"``,
``"schedule"``, ``"result"``, ``"pipeline"``, or the between-pass
``"transition"`` kind).  Rules are declarative data: the concrete packs
(:mod:`repro.analysis.packs`) register them at import time with the
:func:`rule` decorator, and the analyzers (:mod:`repro.analysis.verify`)
run every registered rule of a kind over a subject and collect the
:class:`Violation` findings into an :class:`AnalysisReport`.

Rule IDs are part of the public contract: ``REP1xx`` are artifact
invariants, ``REP2xx`` pipeline contracts.  An ID is never reused for a
different invariant (retired IDs stay retired), so reports, CI logs and
suppressions stay meaningful across versions.
"""

from __future__ import annotations

import dataclasses
import enum
from collections.abc import Callable, Iterable, Iterator

from repro.errors import AnalysisError


class Severity(enum.IntEnum):
    """How bad a violation is; ordered so ``max()`` picks the worst."""

    INFO = 10
    """Observation only; never fails a lint run."""
    WARNING = 20
    """Suspicious but not provably wrong (e.g. an unverifiable reorder)."""
    ERROR = 30
    """A broken invariant: the artifact is corrupt or semantics-unsafe."""

    def __str__(self) -> str:
        return self.name


@dataclasses.dataclass(frozen=True)
class Violation:
    """One rule firing at one location.

    Attributes:
        rule_id: Stable identifier of the fired rule (``"REP101"``).
        severity: The rule's severity (rules fire at their declared
            severity unless they explicitly downgrade, e.g. when a
            matrix is too wide to check exactly).
        message: Human-readable description of what is wrong, naming
            the offending object.
        location: Where in the artifact (a qubit, a node repr, a
            pipeline position) the violation sits; free-form text.
        subject_kind: Artifact kind the rule ran over.
    """

    rule_id: str
    severity: Severity
    message: str
    location: str = ""
    subject_kind: str = ""

    def describe(self) -> str:
        where = f" [{self.location}]" if self.location else ""
        return f"{self.rule_id} {self.severity}{where}: {self.message}"


@dataclasses.dataclass
class AnalysisReport:
    """Every violation one analysis run produced.

    Truthiness is "no ERROR violations": warnings and infos do not fail
    a report, mirroring how the lint CLI exits.
    """

    subject: str
    violations: list[Violation] = dataclasses.field(default_factory=list)
    checked_rules: tuple[str, ...] = ()
    """IDs of every rule that ran (fired or not), for coverage reports."""

    @property
    def errors(self) -> list[Violation]:
        return [v for v in self.violations if v.severity >= Severity.ERROR]

    @property
    def warnings(self) -> list[Violation]:
        return [v for v in self.violations if v.severity == Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity violation fired."""
        return not self.errors

    def __bool__(self) -> bool:
        return self.ok

    def __len__(self) -> int:
        return len(self.violations)

    def __iter__(self) -> Iterator[Violation]:
        return iter(self.violations)

    def fired_rule_ids(self) -> tuple[str, ...]:
        """Sorted unique IDs of the rules that fired."""
        return tuple(sorted({v.rule_id for v in self.violations}))

    def by_rule(self, rule_id: str) -> list[Violation]:
        """Violations of one rule."""
        return [v for v in self.violations if v.rule_id == rule_id]

    def extend(self, other: AnalysisReport) -> AnalysisReport:
        """Fold another report's findings into this one (chainable)."""
        self.violations.extend(other.violations)
        merged = dict.fromkeys(self.checked_rules)
        merged.update(dict.fromkeys(other.checked_rules))
        self.checked_rules = tuple(merged)
        return self

    def summary(self) -> str:
        if not self.violations:
            return f"{self.subject}: clean ({len(self.checked_rules)} rules)"
        counts = (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )
        lines = [f"{self.subject}: {counts}"]
        lines.extend(f"  {v.describe()}" for v in self.violations)
        return "\n".join(lines)


#: Signature of a rule body: ``(subject, options) -> iterable of
#: violations``.  ``options`` is a plain dict of analyzer-supplied
#: context (width limits, devices, commutation checkers, snapshots).
RuleCheck = Callable[[object, dict], Iterable[Violation]]


@dataclasses.dataclass(frozen=True)
class Rule:
    """One registered invariant.

    Attributes:
        rule_id: Stable identifier, unique across the registry.
        kind: Artifact kind the rule applies to.
        severity: Default severity of this rule's violations.
        title: One-line summary (the rule-ID table in the README).
        check: The rule body.
    """

    rule_id: str
    kind: str
    severity: Severity
    title: str
    check: RuleCheck

    def violation(self, message: str, location: str = "",
                  severity: Severity | None = None) -> Violation:
        """A violation of this rule (helper for rule bodies)."""
        return Violation(
            rule_id=self.rule_id,
            severity=self.severity if severity is None else severity,
            message=message,
            location=location,
            subject_kind=self.kind,
        )

    def run(self, subject: object, options: dict) -> list[Violation]:
        return list(self.check(subject, options))


_RULES: dict[str, Rule] = {}


def register_rule(rule_obj: Rule) -> Rule:
    """Add a rule to the registry; IDs must be unique."""
    if rule_obj.rule_id in _RULES:
        raise AnalysisError(
            f"rule ID {rule_obj.rule_id!r} is already registered "
            f"({_RULES[rule_obj.rule_id].title!r})"
        )
    _RULES[rule_obj.rule_id] = rule_obj
    return rule_obj


def rule(rule_id: str, kind: str, severity: Severity, title: str):
    """Decorator registering a function as a rule body.

    The decorated function receives ``(rule, subject, options)`` — the
    rule object first, so bodies can mint violations via
    :meth:`Rule.violation` without repeating their own ID::

        @rule("REP101", "circuit", Severity.ERROR, "qubit index in range")
        def _qubits_in_range(rule, circuit, options):
            ...
            yield rule.violation("qubit 7 outside register", "gate 3")
    """

    def decorate(fn: Callable) -> Rule:
        def check(subject: object, options: dict) -> Iterable[Violation]:
            return fn(registered, subject, options)

        registered = Rule(
            rule_id=rule_id,
            kind=kind,
            severity=severity,
            title=title,
            check=check,
        )
        register_rule(registered)
        return registered

    return decorate


def rules_for(kind: str) -> list[Rule]:
    """Every registered rule of one artifact kind, in ID order."""
    return sorted(
        (r for r in _RULES.values() if r.kind == kind),
        key=lambda r: r.rule_id,
    )


def all_rules() -> list[Rule]:
    """Every registered rule, in ID order."""
    return sorted(_RULES.values(), key=lambda r: r.rule_id)


def rule_by_id(rule_id: str) -> Rule:
    """Look a rule up by its stable ID."""
    try:
        return _RULES[rule_id]
    except KeyError:
        raise AnalysisError(
            f"unknown rule ID {rule_id!r}; known: "
            f"{', '.join(sorted(_RULES))}"
        ) from None


def run_rules(kind: str, subject: object, subject_label: str,
              options: dict | None = None) -> AnalysisReport:
    """Run every rule of ``kind`` over a subject; collect the findings."""
    options = options or {}
    selected = rules_for(kind)
    report = AnalysisReport(
        subject=subject_label,
        checked_rules=tuple(r.rule_id for r in selected),
    )
    for entry in selected:
        report.violations.extend(entry.run(subject, options))
    return report
