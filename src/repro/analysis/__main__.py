"""``python -m repro.analysis`` — lint artifacts and check pipelines.

Examples::

    # Lint saved repro-ir-v1 artifacts and QASM files (no compilation)
    python -m repro.analysis result.json circuit.qasm

    # Statically analyze every registered strategy's pipeline
    python -m repro.analysis --pipelines

    # Print the rule table (the IDs the README documents)
    python -m repro.analysis --rules

Exit status: 0 when every report is clean of ERROR-severity violations,
1 when any rule fired an ERROR, 2 when an input could not be analyzed
at all (unreadable file, unknown artifact kind, unknown strategy).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.core import Severity, all_rules
from repro.analysis.lint import lint_path
from repro.errors import AnalysisError, ReproError


def _print_report(report, verbose: bool) -> None:
    if report.violations or verbose:
        print(report.summary())
    else:
        print(f"{report.subject}: clean")


def _lint_files(paths, width_limit, verbose: bool) -> tuple[int, int]:
    failures = 0
    hard_errors = 0
    for path in paths:
        try:
            report = lint_path(path, width_limit=width_limit)
        except AnalysisError as error:
            print(f"{path}: analysis failed: {error}", file=sys.stderr)
            hard_errors += 1
            continue
        _print_report(report, verbose)
        if not report.ok:
            failures += 1
    return failures, hard_errors


def _analyze_pipelines(keys, verbose: bool) -> tuple[int, int]:
    from repro.analysis.contracts import analyze_pipeline
    from repro.compiler.strategies import (
        registered_strategies,
        strategy_by_key,
    )

    failures = 0
    hard_errors = 0
    if keys:
        try:
            strategies = [strategy_by_key(key) for key in keys]
        except ReproError as error:
            print(f"pipeline analysis failed: {error}", file=sys.stderr)
            return 0, 1
    else:
        strategies = registered_strategies()
    for strategy in strategies:
        try:
            pipeline = strategy.pipeline()
        except ReproError as error:
            print(
                f"strategy {strategy.key!r}: pipeline resolution failed: "
                f"{error}",
                file=sys.stderr,
            )
            hard_errors += 1
            continue
        report = analyze_pipeline(pipeline, strategy_key=strategy.key)
        names = " -> ".join(pass_.name for pass_ in pipeline)
        if verbose:
            print(f"{strategy.key}: {names}")
        _print_report(report, verbose)
        if not report.ok:
            failures += 1
    return failures, hard_errors


def _print_rule_table() -> None:
    width = max(len(rule.rule_id) for rule in all_rules())
    for rule in all_rules():
        severity = (
            "" if rule.severity == Severity.ERROR else f" [{rule.severity}]"
        )
        print(f"{rule.rule_id:<{width}}  {rule.kind:<12} {rule.title}{severity}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Lint circuits, repro-ir-v1 artifacts and QASM files, and "
            "statically analyze pass pipelines — without compiling."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=".json artifacts and .qasm files to lint",
    )
    parser.add_argument(
        "--pipelines",
        action="store_true",
        help="statically analyze every registered strategy's pipeline",
    )
    parser.add_argument(
        "--strategy",
        action="append",
        default=[],
        metavar="KEY",
        help="with --pipelines: analyze only this strategy (repeatable)",
    )
    parser.add_argument(
        "--width-limit",
        type=int,
        default=None,
        help=(
            "aggregation width limit for result artifacts (enables "
            "REP131; the limit is not stored on the wire)"
        ),
    )
    parser.add_argument(
        "--rules",
        action="store_true",
        help="print the rule-ID table and exit",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="print full reports even when clean",
    )
    args = parser.parse_args(argv)

    if args.rules:
        _print_rule_table()
        return 0
    if not args.paths and not args.pipelines:
        parser.error("nothing to do: give artifact paths, --pipelines, or --rules")

    failures = 0
    hard_errors = 0
    if args.paths:
        file_failures, file_errors = _lint_files(
            args.paths, args.width_limit, args.verbose
        )
        failures += file_failures
        hard_errors += file_errors
    if args.pipelines:
        pipe_failures, pipe_errors = _analyze_pipelines(
            args.strategy, args.verbose
        )
        failures += pipe_failures
        hard_errors += pipe_errors

    if hard_errors:
        return 2
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
