"""Static pipeline-contract analysis.

Every :class:`~repro.compiler.passes.Pass` declares which context fields
it ``requires`` and which it ``produces`` (class attributes, so the
declaration is data, not behaviour).  This module is the *single source
of truth* for interpreting those declarations: the static analyzer
(:func:`analyze_pipeline`, run at strategy-registration time), and the
runtime :meth:`~repro.compiler.context.CompilationContext.require`
message both derive from the same metadata.

The analysis is conservative about fields a caller *may* supply up
front: ``device``/``topology`` can arrive pre-resolved on the context,
but the built-in contract treats them as products of
``PlaceAndRoutePass`` so a pipeline is only accepted when it is correct
for *every* caller.
"""

from __future__ import annotations

from repro.analysis.core import AnalysisReport, run_rules
from repro.errors import PassOrderingError

INITIAL_FIELDS = frozenset(
    {
        "circuit",
        "device_config",
        "compiler_config",
        "ocu",
        "checker",
        "width_limit",
        "strategy_key",
        "pulse_backend",
    }
)
"""Context fields every :meth:`CompilationContext.create` call fills."""

RESULT_FIELDS = frozenset({"schedule", "routing", "topology"})
"""Fields :meth:`CompilationContext.result` requires of a finished run."""


def contract_of(pass_) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """The (requires, produces) declaration of a pass instance."""
    return (
        tuple(getattr(pass_, "requires", ())),
        tuple(getattr(pass_, "produces", ())),
    )


def _pass_classes() -> list[type]:
    from repro.compiler.passes import Pass

    classes: list[type] = []
    frontier: list[type] = [Pass]
    while frontier:
        current = frontier.pop()
        for subclass in current.__subclasses__():
            classes.append(subclass)
            frontier.append(subclass)
    return classes


def producers_of(field: str) -> tuple[str, ...]:
    """Names of the known pass classes whose contract produces ``field``.

    Scans every imported :class:`Pass` subclass, so user passes that
    declare ``produces`` are found too.
    """
    names = {
        cls.__name__
        for cls in _pass_classes()
        if field in getattr(cls, "produces", ())
    }
    return tuple(sorted(names))


def missing_field_hint(field: str) -> str:
    """Human hint naming what produces a missing context field."""
    producers = producers_of(field)
    if producers:
        return f"produced by {', '.join(producers)}"
    if field in INITIAL_FIELDS:
        return "an initial context field"
    return "produced by no known pass"


def analyze_pipeline(
    passes,
    *,
    strategy_key: str = "pipeline",
    require_result: bool = True,
) -> AnalysisReport:
    """Statically check a pass list's ordering and completeness.

    Walks the pipeline front to back tracking which context fields are
    available, without constructing a context or compiling anything.
    ``require_result=False`` accepts partial pipelines (e.g. an
    analysis-only prefix) that never produce a schedule.
    """
    import repro.analysis.packs.pipeline  # noqa: F401  (registers rules)

    return run_rules(
        "pipeline",
        list(passes),
        f"pipeline[{strategy_key}]",
        {"strategy_key": strategy_key, "require_result": require_result},
    )


def check_pipeline(
    passes,
    *,
    strategy_key: str = "pipeline",
    require_result: bool = True,
) -> None:
    """Raise :class:`PassOrderingError` when a pipeline is misordered."""
    report = analyze_pipeline(
        passes, strategy_key=strategy_key, require_result=require_result
    )
    if report.errors:
        details = "; ".join(v.describe() for v in report.errors)
        raise PassOrderingError(
            f"pipeline for strategy {strategy_key!r} fails static contract "
            f"analysis: {details}"
        )
