"""The optimal control unit (OCU): latency and pulse oracle (Sec. 3.5).

Two backends share one interface:

* ``"model"`` (default) — the calibrated analytic latency model; fast
  enough for the aggregation loop's thousands of queries.
* ``"grape"`` — real numeric pulse optimization with a minimal-time
  search, used for Table 1, the Figure 4 pulses and verification; falls
  back to the model above :attr:`grape_qubit_limit` qubits.

Latencies (and synthesized pulses) are cached by a structural signature of
the instruction, so repeated instructions across a circuit are optimized
once — the "partial compilation" direction the paper's future-work section
proposes.  The cache itself lives in a :class:`~repro.control.cache.PulseCache`
(pass one in to share it across units, batch workers or — with the disk
backend — whole processes); every entry is namespaced by a fingerprint of
the device/compiler/GRAPE configuration, so a shared store never confuses
units with different physics.
"""

from __future__ import annotations

import time

import numpy as np

from repro.config import (
    CompilerConfig,
    DEFAULT_COMPILER,
    DEFAULT_DEVICE,
    DeviceConfig,
)
from repro.control.cache import CacheSession, PulseCache, config_fingerprint
from repro.control.grape import GrapeResult
from repro.control.hamiltonian import xy_hamiltonian
from repro.control.latency_model import AnalyticLatencyModel
from repro.control.time_search import minimal_pulse_time
from repro.device.device import Device
from repro.errors import ControlError
from repro.gates.gate import Gate
from repro.linalg.embed import embed_operator

_BACKENDS = ("model", "grape")


class OptimalControlUnit:
    """Latency/pulse oracle for gates and aggregated instructions.

    ``device`` accepts either a bare :class:`DeviceConfig` (homogeneous
    physics, the paper's setting) or a full
    :class:`~repro.device.device.Device`.  A heterogeneous device (per-
    edge coupling-limit overrides) changes the oracle in three ways:
    the analytic model and the GRAPE Hamiltonian price each coupling at
    its edge's limit, the cache fingerprint folds in the device
    signature, and cache keys gain the instruction's *absolute* qubit
    support — the same gate structure on two differently-calibrated
    edges must not share an entry.
    """

    def __init__(
        self,
        device: DeviceConfig | Device = DEFAULT_DEVICE,
        compiler: CompilerConfig = DEFAULT_COMPILER,
        backend: str = "model",
        grape_qubit_limit: int = 3,
        grape_dt: float | None = None,
        seed: int = 20190413,
        cache: PulseCache | CacheSession | None = None,
        grape_kernel: str = "vectorized",
        grape_warm_start: bool = True,
        grape_plateau_iterations: int | None = 60,
    ) -> None:
        """``grape_kernel`` / ``grape_warm_start`` /
        ``grape_plateau_iterations`` select the optimal-control fast
        path (the defaults) or the legacy behavior (``"reference"`` /
        ``False`` / ``None``) — ``benchmarks/bench_batch.py`` measures
        the two against each other.  Non-default values are folded into
        the cache fingerprint: the kernels' gradients agree to ~1e-12
        but their Adam trajectories (and therefore pulses) diverge, so
        entries from different algorithm variants must never mix."""
        if backend not in _BACKENDS:
            raise ControlError(f"unknown backend {backend!r}; use {_BACKENDS}")
        if isinstance(device, Device):
            self.target: Device | None = device
            self.device = device.config
        else:
            self.target = None
            self.device = device
        self.compiler = compiler
        self.backend = backend
        self.grape_qubit_limit = int(grape_qubit_limit)
        self.grape_dt = grape_dt if grape_dt is not None else compiler.grape_dt_ns
        self.seed = seed
        self.grape_kernel = grape_kernel
        self.grape_warm_start = bool(grape_warm_start)
        self.grape_plateau_iterations = grape_plateau_iterations
        self.model = AnalyticLatencyModel(self.device, target=self.target)
        self.cache = cache if cache is not None else PulseCache()
        self._position_dependent = (
            self.target is not None and self.target.has_heterogeneous_couplings
        )
        # Pre-placement queries (positional=False) price at the
        # homogeneous baseline: logical indices carry no edge identity.
        self._homogeneous_model = (
            AnalyticLatencyModel(self.device)
            if self._position_dependent
            else self.model
        )
        self.fingerprint = config_fingerprint(
            device=self.device,
            compiler=compiler,
            grape_qubit_limit=self.grape_qubit_limit,
            grape_dt=self.grape_dt,
            seed=self.seed,
            target=self.target,
            grape_kernel=grape_kernel,
            grape_warm_start=self.grape_warm_start,
            grape_plateau_iterations=grape_plateau_iterations,
        )
        self.cache_hits = 0
        self.grape_calls = 0
        self.grape_fallbacks = 0
        self.model_evals = 0
        self.grape_evals = 0
        self.grape_wall_seconds = 0.0

    def _node_signature(self, node, positional: bool = True) -> tuple:
        """Cache signature: structural, plus absolute support when the
        target prices edges heterogeneously (position matters then).

        Non-positional queries keep the plain structural signature —
        they price homogeneously, and the missing ``support`` suffix
        keeps their entries from ever answering a positional query.
        """
        signature = _signature_of(node)
        if self._position_dependent and positional:
            return signature + (("support",) + support_of(node),)
        return signature

    def node_signature(self, node, positional: bool = True) -> tuple:
        """Public form of the cache-signature convention.

        The batch engine's pre-warm planner dedups GRAPE work across a
        whole batch by this signature: two nodes mapping to the same
        tuple (under the same unit configuration) are the same control
        problem and share one cache entry.
        """
        return self._node_signature(node, positional)

    def grape_eligible(self, node) -> bool:
        """Whether this unit would answer ``latency(node)`` with GRAPE."""
        return (
            self.backend == "grape"
            and len(support_of(node)) <= self.grape_qubit_limit
        )

    # ------------------------------------------------------------------
    # Latency

    def latency(self, node, positional: bool = True) -> float:
        """Pulse latency (ns) of a gate or aggregated instruction.

        Args:
            node: Gate or aggregated instruction.
            positional: Whether the node's qubit indices are *physical*
                (post-placement).  Pre-placement callers — the logical
                scheduling stage — pass False so a heterogeneous target
                prices at the homogeneous baseline instead of reading
                edge overrides through logical indices that have not
                been assigned to edges yet.  Ignored on homogeneous
                devices.
        """
        key = (
            self.fingerprint,
            self.backend,
            self._node_signature(node, positional),
        )
        cached = self.cache.get_latency(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        gates = gates_of(node)
        if self.backend == "grape" and len(support_of(node)) <= self.grape_qubit_limit:
            value = self._grape_latency(node, gates, positional)
        else:
            if self.backend == "grape":
                self.grape_fallbacks += 1
            self.model_evals += 1
            model = self.model if positional else self._homogeneous_model
            value = model.sequence_latency(gates)
        self.cache.put_latency(key, value)
        return value

    def model_latency(self, node) -> float:
        """Analytic-model latency regardless of the configured backend.

        Cached by structural signature: the aggregator probes the same
        candidate-pair structures across rounds.
        """
        key = (self.fingerprint, "model", self._node_signature(node))
        cached = self.cache.get_latency(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.model_evals += 1
        value = self.model.sequence_latency(gates_of(node))
        self.cache.put_latency(key, value)
        return value

    def _grape_latency(self, node, gates, positional: bool = True) -> float:
        result = self.synthesize_pulse(node, positional)
        # GRAPE busy time plus the same fixed setup overhead the model
        # charges (ramp-up is not simulated by the piecewise model).
        uses_coupling = any(len(g.qubits) >= 2 for g in gates)
        setup = (
            self.device.setup_time_2q_ns
            if uses_coupling
            else self.device.setup_time_1q_ns
        )
        return setup + result.duration

    # ------------------------------------------------------------------
    # Pulses

    def synthesize_pulse(self, node, positional: bool = True) -> GrapeResult:
        """Run GRAPE (with minimal-time search) for a node's unitary.

        ``positional`` as in :meth:`latency`: non-positional synthesis
        on a heterogeneous target bounds every coupling field at the
        homogeneous baseline.
        """
        key = (self.fingerprint, self._node_signature(node, positional))
        cached = self.cache.get_pulse(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        support = support_of(node)
        if len(support) > self.grape_qubit_limit:
            raise ControlError(
                f"instruction width {len(support)} exceeds the GRAPE limit "
                f"{self.grape_qubit_limit}"
            )
        with self.cache.exclusive(key):
            return self._synthesize_locked(key, node, support, positional)

    def _synthesize_locked(self, key, node, support, positional) -> GrapeResult:
        """The expensive half of :meth:`synthesize_pulse`, run under the
        cache's single-flight guard.

        The re-check is the point of the guard: while we blocked on it, a
        peer (thread, process, or another machine, depending on the cache
        backend) may have synthesized this exact signature and published
        it — content-addressed keys make its result interchangeable with
        ours, so adopting it keeps each signature synthesized once per
        fleet.  For the in-memory base cache the guard is a no-op and the
        re-check hits only on the buffered entry it just missed, i.e.
        never — behavior is bit-identical to the unguarded path.
        """
        cached = self.cache.get_pulse(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        gates = gates_of(node)
        target, hamiltonian = self._local_problem(support, gates, positional)
        self.model_evals += 1
        # The search estimate must respect the same positional policy as
        # the Hamiltonian: a non-positional estimate read through edge
        # overrides would vary with logical labels the cache key omits.
        model = self.model if positional else self._homogeneous_model
        estimate = max(
            model.sequence_latency(gates) - self.device.setup_time_2q_ns,
            4 * self.grape_dt,
        )
        self.grape_calls += 1
        started = time.perf_counter()
        search = minimal_pulse_time(
            target,
            hamiltonian,
            estimate=estimate,
            fidelity_threshold=self.compiler.fidelity_threshold,
            dt=self.grape_dt,
            seed=self.seed,
            warm_start=self.grape_warm_start,
            plateau_iterations=self.grape_plateau_iterations,
            kernel=self.grape_kernel,
        )
        self.grape_wall_seconds += time.perf_counter() - started
        self.grape_evals += search.evaluations
        self.cache.put_pulse(key, search.grape)
        return search.grape

    def _local_problem(self, support, gates, positional: bool = True):
        """Target unitary and Hamiltonian in instruction-local indices."""
        index = {qubit: position for position, qubit in enumerate(support)}
        width = len(support)
        target = np.eye(2**width, dtype=complex)
        edges = set()
        for gate in gates:
            positions = [index[q] for q in gate.qubits]
            target = embed_operator(gate.matrix, positions, width) @ target
            if len(positions) == 2:
                edges.add((min(positions), max(positions)))
        if width > 1 and not edges:
            # Drive-only instruction spanning several qubits: give GRAPE
            # the chain couplings so the Hamiltonian stays connected.
            edges = {(i, i + 1) for i in range(width - 1)}
        coupling_rates = None
        if self._position_dependent and positional:
            # Map each local edge back to its physical pair and price the
            # coupling field at that edge's override.
            coupling_rates = {
                (a, b): self.target.coupling_rate_of(support[a], support[b])
                for a, b in edges
            }
        hamiltonian = xy_hamiltonian(
            width, sorted(edges), self.device, coupling_rates=coupling_rates
        )
        return target, hamiltonian

    # ------------------------------------------------------------------
    # Statistics

    def cache_info(self) -> dict:
        """Cache and backend usage counters (partial-compilation stats).

        ``latency_entries``/``pulse_entries`` count the backing store
        (which other units may share); the remaining counters are local
        to this unit.  ``grape_evals`` counts GRAPE loss+gradient
        evaluations and ``grape_wall_seconds`` the wall-clock spent
        inside the minimal-time search — the two numbers that show
        where a cold batch's time goes (``BENCH_batch.json``).  The
        backing store's own :meth:`~...PulseCache.stats` fields (backend
        tag, store hit/miss/eviction counters, and any backend-specific
        extras such as shard flushes or remote round trips) are folded in
        underneath — unit-local keys win on collision.
        """
        info = {
            "latency_entries": self.cache.latency_count,
            "pulse_entries": self.cache.pulse_count,
            "cache_hits": self.cache_hits,
            "grape_calls": self.grape_calls,
            "grape_fallbacks": self.grape_fallbacks,
            "model_evals": self.model_evals,
            "grape_evals": self.grape_evals,
            "grape_wall_seconds": self.grape_wall_seconds,
        }
        for key, value in self.cache.stats().items():
            info.setdefault(key, value)
        return info


def gates_of(node) -> list[Gate]:
    """The plain gates a node executes: ``[node]`` for a
    :class:`~repro.gates.gate.Gate`, the member list for anything
    exposing ``gates`` (aggregated and hand-optimized instructions)."""
    if isinstance(node, Gate):
        return [node]
    gates = getattr(node, "gates", None)
    if gates is None:
        raise ControlError(f"cannot extract gates from {node!r}")
    return list(gates)


def support_of(node) -> tuple[int, ...]:
    """A node's qubit support, sorted and deduplicated.

    This is the instruction-local qubit order every dense representation
    uses (``AggregatedInstruction.matrix``, the OCU's local problems, the
    pulse propagator), so callers embedding such a matrix into a register
    must place its axes on exactly this tuple.
    """
    return tuple(sorted(set(node.qubits)))


# Backwards-compatible aliases (pre-PR-4 internal names).
_gates_of = gates_of
_support_of = support_of


def _signature_of(node) -> tuple:
    """Structural identity: gate signatures + relative qubit geometry."""
    gates = gates_of(node)
    support = support_of(node)
    index = {qubit: position for position, qubit in enumerate(support)}
    parts = []
    for gate in gates:
        parts.append(
            (
                gate.name,
                tuple(round(p, 10) for p in gate.params),
                tuple(index[q] for q in gate.qubits),
            )
        )
    return (len(support), tuple(parts))
