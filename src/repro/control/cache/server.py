"""The shared cache server: one warm pulse store for a whole fleet.

A stdlib ``socketserver.ThreadingTCPServer`` speaking the
length-prefixed JSON protocol of :mod:`repro.control.cache.protocol`.
The server owns one :class:`~repro.control.cache.store.PulseCache`
(optionally disk-backed, optionally byte-budgeted — eviction then
happens server-side, fleet-wide) and answers point lookups, batched
delta uploads, statistics queries, and the per-signature lease that
gives remote clients fleet-wide single-flight synthesis.

Run it standalone with ``python -m repro.control.cache_server`` or embed
it (tests, examples)::

    server = CacheServer(store=DiskPulseCache("fleet_cache"))
    server.start()                      # background thread
    ... clients connect to server.url ...
    server.stop()                       # drains, saves a disk store
"""

from __future__ import annotations

import socketserver
import threading
import time

from repro.control.cache.protocol import (
    PROTOCOL_FORMAT,
    decode_latency_key,
    decode_pulse_key,
    reachable_host,
    recv_message,
    send_message,
)
from repro.control.cache.store import PulseCache

#: A crashed client's lease must not wedge its signature forever; after
#: this many seconds an unreleased lease is grantable again.  Far above
#: any real synthesis time at the paper's instruction widths.
DEFAULT_LOCK_TTL_SECONDS = 300.0

#: Server-side clamp on a client-requested lease ``ttl``: whatever the
#: client asks for, a crashed holder's lease still expires within this.
MIN_LOCK_TTL_SECONDS = 1.0
MAX_LOCK_TTL_SECONDS = 3600.0

_OPS = (
    "ping",
    "get_latency",
    "get_pulse",
    "push_delta",
    "stats",
    "lock",
    "unlock",
)


class _LeaseTable:
    """Per-signature leases with a crash-recovery TTL."""

    def __init__(self, ttl: float) -> None:
        self.ttl = ttl
        self._leases: dict[tuple, tuple[str, float]] = {}
        self._lock = threading.Lock()
        self.expired = 0

    def acquire(self, key: tuple, owner: str, ttl: float | None = None) -> bool:
        """Grant (or renew — same owner re-acquiring) the lease on a key.

        ``ttl`` overrides the table default for this grant; callers are
        expected to clamp it before it gets here.
        """
        now = time.monotonic()
        with self._lock:
            held = self._leases.get(key)
            if held is not None:
                holder, deadline = held
                if holder != owner and now < deadline:
                    return False
                if holder != owner:
                    self.expired += 1
            self._leases[key] = (owner, now + (self.ttl if ttl is None else ttl))
            return True

    def release(self, key: tuple, owner: str) -> bool:
        with self._lock:
            held = self._leases.get(key)
            if held is None or held[0] != owner:
                return False
            del self._leases[key]
            return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._leases)


class _Handler(socketserver.BaseRequestHandler):
    """One connection: a stream of request frames until EOF."""

    def handle(self) -> None:
        server: _TCPServer = self.server  # type: ignore[assignment]
        while True:
            try:
                request = recv_message(self.request)
            except Exception:
                return  # torn frame / reset: drop the connection
            if request is None:
                return
            try:
                response = server.cache_server.dispatch(request)
            except Exception as error:  # never kill the server thread
                # A raised dispatch is as much a failed request as an
                # unknown op; without this, stats() under-reports.
                server.cache_server.record_error()
                response = {"ok": False, "error": f"{type(error).__name__}: {error}"}
            try:
                send_message(self.request, response)
            except OSError:
                return


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    cache_server: CacheServer


class CacheServer:
    """The fleet cache: store + lease table + request dispatch.

    Args:
        store: The backing :class:`PulseCache` (any backend; pass a
            :class:`~repro.control.cache.disk.DiskPulseCache` for
            persistence or set its ``max_bytes`` for server-side
            eviction).  A fresh in-memory store when omitted.
        host / port: Bind address; port 0 picks a free port (read it
            back from :attr:`url` after construction).
        lock_ttl: Seconds before an unreleased synthesis lease expires.
    """

    def __init__(
        self,
        store: PulseCache | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        lock_ttl: float = DEFAULT_LOCK_TTL_SECONDS,
    ) -> None:
        self.store = store if store is not None else PulseCache()
        self.leases = _LeaseTable(lock_ttl)
        self.started_at = time.time()
        self.op_counts: dict[str, int] = dict.fromkeys(_OPS, 0)
        self.errors = 0
        #: Request/error counters are bumped from ThreadingTCPServer
        #: handler threads, one per connected client; ``n += 1`` is a
        #: read-modify-write, so unlocked concurrent bumps lose counts.
        self._counter_lock = threading.Lock()
        self._tcp = _TCPServer((host, port), _Handler)
        self._tcp.cache_server = self
        self._thread: threading.Thread | None = None

    # -- lifecycle -------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        return self._tcp.server_address[:2]

    @property
    def url(self) -> str:
        """A *connectable* ``host:port`` for this server.

        A wildcard bind address (``0.0.0.0`` / ``::``) is resolved to
        loopback — the wildcard listens everywhere but connects nowhere,
        so advertising it verbatim hands clients a dead address.  Reach
        a wildcard-bound server from another machine by its real
        interface address instead.
        """
        host, port = self.address
        return f"{reachable_host(host)}:{port}"

    def start(self) -> CacheServer:
        """Serve from a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._tcp.serve_forever, name="cache-server", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI path)."""
        self._tcp.serve_forever()

    def stop(self) -> int:
        """Shut down and persist the store; returns entries saved."""
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        return self.store.save()

    def __enter__(self) -> CacheServer:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- request dispatch ------------------------------------------------

    def record_error(self) -> None:
        """Count one failed request (unknown op or raised dispatch)."""
        with self._counter_lock:
            self.errors += 1

    def dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op not in _OPS:
            self.record_error()
            return {"ok": False, "error": f"unknown op {op!r}; known: {_OPS}"}
        with self._counter_lock:
            self.op_counts[op] += 1
        return getattr(self, f"_op_{op}")(request)

    def _op_ping(self, request: dict) -> dict:
        return {"ok": True, "format": PROTOCOL_FORMAT}

    def _op_get_latency(self, request: dict) -> dict:
        key = decode_latency_key(request["key"])
        value = self.store.get_latency(key)
        if value is None:
            return {"ok": True, "found": False}
        return {"ok": True, "found": True, "value": value}

    def _op_get_pulse(self, request: dict) -> dict:
        from repro.ir.serialize import grape_result_to_dict

        key = decode_pulse_key(request["key"])
        result = self.store.get_pulse(key)
        if result is None:
            return {"ok": True, "found": False}
        return {"ok": True, "found": True, "result": grape_result_to_dict(result)}

    def _op_push_delta(self, request: dict) -> dict:
        from repro.ir.serialize import cache_delta_from_dict

        delta = cache_delta_from_dict(request["delta"])
        added = self.store.merge_delta(delta)
        return {"ok": True, "added": added, "received": len(delta)}

    def _op_stats(self, request: dict) -> dict:
        from repro.ir.serialize import cache_stats_to_dict

        return {"ok": True, "stats": cache_stats_to_dict(self.stats())}

    def _op_lock(self, request: dict) -> dict:
        key = decode_pulse_key(request["key"])
        ttl = request.get("ttl")
        if ttl is not None:
            ttl = max(MIN_LOCK_TTL_SECONDS, min(float(ttl), MAX_LOCK_TTL_SECONDS))
        granted = self.leases.acquire(key, str(request["owner"]), ttl=ttl)
        return {"ok": True, "granted": granted}

    def _op_unlock(self, request: dict) -> dict:
        key = decode_pulse_key(request["key"])
        released = self.leases.release(key, str(request["owner"]))
        return {"ok": True, "released": released}

    # -- metrics ---------------------------------------------------------

    def stats(self) -> dict:
        """Store stats plus server-side request/lease counters."""
        info = self.store.stats()
        with self._counter_lock:
            requests = {k: v for k, v in self.op_counts.items() if v}
            errors = self.errors
        info.update(
            server_uptime_seconds=time.time() - self.started_at,
            server_requests=requests,
            server_errors=errors,
            server_active_leases=len(self.leases),
            server_expired_leases=self.leases.expired,
        )
        return info
