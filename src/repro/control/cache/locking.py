"""Advisory file locking for multi-process cache coordination.

POSIX ``flock`` locks on dedicated lock files: cheap, kernel-released
when the holder dies (no stale-lock cleanup), and advisory — every
cooperating writer goes through :class:`FileLock`, readers never need
to.  On platforms without :mod:`fcntl` the lock degrades to a no-op and
:data:`HAVE_FILE_LOCKS` is False; the sharded store still works there
(atomic replaces keep files uncorrupted), it just loses the exactly-
once-synthesis guarantee across processes.
"""

from __future__ import annotations

import os
import time

try:  # pragma: no cover - platform availability, not logic
    import fcntl

    HAVE_FILE_LOCKS = True
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]
    HAVE_FILE_LOCKS = False


class FileLock:
    """A blocking, advisory, exclusive lock on ``path``.

    Context manager; re-usable but not re-entrant.  The lock file itself
    is never written to and never deleted (deleting a lock file another
    process may be blocked on is a classic flock race), so lock
    directories accumulate a handful of empty files, one per lock name.

    Attributes:
        waited_seconds: Cumulative wall-clock this instance spent
            blocked waiting for the lock — the contention metric the
            sharded store surfaces in its :meth:`~...PulseCache.stats`.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        self.waited_seconds = 0.0
        self._handle = None

    def acquire(self) -> None:
        if self._handle is not None:
            raise RuntimeError(f"lock {self.path} is already held")
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        handle = open(self.path, "a+b")  # noqa: SIM115 - held past scope
        started = time.perf_counter()
        if HAVE_FILE_LOCKS:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        self.waited_seconds += time.perf_counter() - started
        self._handle = handle

    def release(self) -> None:
        handle, self._handle = self._handle, None
        if handle is None:
            return
        if HAVE_FILE_LOCKS:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        handle.close()

    def __enter__(self) -> FileLock:
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()
