"""Sharded on-disk pulse store: many processes, one box, no server.

A directory of ``shard-NNN.json``/``.npz`` pairs (the same pair format
as :class:`~repro.control.cache.disk.DiskPulseCache`, one pair per
shard) plus a ``locks/`` directory of advisory lock files.  Keys hash
into shards by their structural signature, so the latency and pulse
entries of one control problem co-locate and concurrent writers rarely
touch the same pair.

Safety model:

* **Readers never lock.**  Shard files are only ever replaced
  atomically, so a reader sees either the old complete pair or the new
  complete pair, and the ``save_id`` check pairs manifests with arrays.
* **Writers merge under the shard lock.**  :meth:`save` re-reads each
  dirty shard from disk, overlays this process's entries, and writes the
  union — two processes flushing interleaved entries cannot lose each
  other's writes.  Last-write-wins on shared keys is safe because keys
  are content-addressed.
* **Synthesis is single-flighted.**  :meth:`exclusive` takes a per-key
  lock file; the winner synthesizes, flushes, and releases, and the
  losers' re-check then reads the published entry from the refreshed
  shard — each distinct signature is synthesized once per *fleet*, not
  once per process.

Misses consult the disk: a lookup that misses in memory stats the key's
shard file and reloads it when another process has replaced it since the
last load (one ``stat`` per cold miss, no reload when nothing changed).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import threading
import time

from repro.control.cache.disk import encode_pair, read_pair, write_pair
from repro.control.cache.locking import FileLock
from repro.control.cache.store import (
    CacheDelta,
    LatencyKey,
    PulseCache,
    PulseKey,
    latency_entry_bytes,
    pulse_entry_bytes,
)
from repro.errors import ControlError

SHARDED_FORMAT = "repro-pulse-cache-sharded-v1"
DEFAULT_SHARDS = 8


class ShardedDiskPulseCache(PulseCache):
    """A pulse store sharded across per-signature files in one directory.

    Args:
        path: Cache directory (created on demand).  Holds one
            ``shard-NNN.json``/``.npz`` pair per shard, a ``locks/``
            subdirectory, and a ``sharding.json`` manifest pinning the
            shard count.
        shards: Shard count for a *new* directory; ``None`` adopts an
            existing directory's count (default ``8`` when creating).
            Opening an existing directory with a conflicting explicit
            count raises — processes disagreeing on the hash ring would
            silently miss each other's entries.
        max_bytes: In-memory LRU budget (see :class:`PulseCache`).
            Entries evicted from memory may still live in their shard
            file and come back on a later miss via the disk read-through.
        max_shard_bytes: On-disk budget *per shard file*.  When a flush
            would write a larger shard, entries are trimmed — disk-only
            entries (least recently seen by anyone here) first, then this
            process's LRU — and counted as ``disk_evictions``.
        autoload: Load every existing shard immediately (default).
    """

    def __init__(
        self,
        path: str | os.PathLike,
        shards: int | None = None,
        max_bytes: int | None = None,
        max_shard_bytes: int | None = None,
        autoload: bool = True,
    ) -> None:
        super().__init__(max_bytes=max_bytes)
        self.directory = os.fspath(path)
        self.max_shard_bytes = max_shard_bytes
        self.shards = self._resolve_shard_count(shards)
        self._dirty: set[int] = set()
        #: (st_mtime_ns, st_size) of each shard manifest at last load;
        #: None = known absent.  Missing key = never looked.  Guarded by
        #: the inherited ``_lock``.
        self._shard_states: dict[int, tuple | None] = {}
        #: Serializes disk reloads so two threads missing on one shard
        #: do one load, not two (held around disk I/O, so it is separate
        #: from the short-critical-section ``_lock``).
        self._refresh_lock = threading.Lock()
        #: Pulse keys currently inside :meth:`exclusive`; ``_trim_shard``
        #: never evicts them, so the publish-before-release contract
        #: survives a tight ``max_shard_bytes``.  Guarded by ``_lock``.
        self._exclusive_keys: set = set()
        self.loaded_entries = 0
        self.pulse_entries_skipped = 0
        self.shard_loads = 0
        self.shard_flushes = 0
        self.disk_evictions = 0
        self.lock_wait_seconds = 0.0
        if autoload:
            self.load()

    # -- pickling: locks cannot cross process boundaries -----------------

    def __getstate__(self):
        state = super().__getstate__()
        del state["_refresh_lock"]
        return state

    def __setstate__(self, state) -> None:
        super().__setstate__(state)
        self._refresh_lock = threading.Lock()

    # -- layout ----------------------------------------------------------

    def shard_stem(self, index: int) -> str:
        return os.path.join(self.directory, f"shard-{index:03d}")

    def _manifest_path(self) -> str:
        return os.path.join(self.directory, "sharding.json")

    def _lock_path(self, name: str) -> str:
        return os.path.join(self.directory, "locks", name)

    def _resolve_shard_count(self, requested: int | None) -> int:
        """Pin the shard count in ``sharding.json`` (first writer wins)."""
        manifest = self._manifest_path()
        existing = None
        try:
            with open(manifest, encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("format") != SHARDED_FORMAT:
                raise ControlError(
                    f"{manifest}: unknown sharded-cache format "
                    f"{payload.get('format')!r} (expected {SHARDED_FORMAT!r})"
                )
            existing = int(payload["shards"])
        except FileNotFoundError:
            pass
        if existing is not None:
            if requested is not None and requested != existing:
                raise ControlError(
                    f"{self.directory} is sharded {existing} ways but "
                    f"shards={requested} was requested; processes must "
                    f"agree on the hash ring"
                )
            return existing
        count = DEFAULT_SHARDS if requested is None else int(requested)
        if count < 1:
            raise ControlError(f"shards must be >= 1, got {count}")
        os.makedirs(self.directory, exist_ok=True)
        with FileLock(self._lock_path("sharding.lock")):
            # Re-check under the lock: another process may have won.
            try:
                with open(manifest, encoding="utf-8") as handle:
                    winner = int(json.load(handle)["shards"])
                if requested is not None and winner != requested:
                    raise ControlError(
                        f"{self.directory} was concurrently sharded "
                        f"{winner} ways (requested {requested})"
                    )
                return winner
            except FileNotFoundError:
                pass
            tmp = manifest + ".tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump({"format": SHARDED_FORMAT, "shards": count}, handle)
            os.replace(tmp, manifest)
        return count

    def shard_of(self, key: tuple) -> int:
        """Which shard a key lives in.

        Hashes the (fingerprint, signature) pair — the first and last
        elements of both key shapes — so a control problem's latency and
        pulse entries land in the same shard.
        """
        token = repr((key[0], key[-1])).encode()
        return int.from_bytes(
            hashlib.sha256(token).digest()[:8], "big"
        ) % self.shards

    # -- lookups with disk read-through ----------------------------------

    def get_latency(self, key: LatencyKey) -> float | None:
        value = super().get_latency(key)
        if value is None and self._refresh_shard(self.shard_of(key)):
            value = super().get_latency(key)
        return value

    def get_pulse(self, key: PulseKey):
        result = super().get_pulse(key)
        if result is None and self._refresh_shard(self.shard_of(key)):
            result = super().get_pulse(key)
        return result

    def put_latency(self, key: LatencyKey, value: float) -> None:
        super().put_latency(key, value)
        with self._lock:
            self._dirty.add(self.shard_of(key))

    def put_pulse(self, key: PulseKey, result) -> None:
        super().put_pulse(key, result)
        with self._lock:
            self._dirty.add(self.shard_of(key))

    def merge_delta(self, delta: CacheDelta) -> int:
        added = super().merge_delta(delta)
        shards = {self.shard_of(key) for key in delta.latencies}
        shards.update(self.shard_of(key) for key in delta.pulses)
        with self._lock:
            self._dirty.update(shards)
        return added

    # -- disk traffic ----------------------------------------------------

    def _stat_shard(self, index: int) -> tuple | None:
        try:
            info = os.stat(self.shard_stem(index) + ".json")
        except FileNotFoundError:
            return None
        return (info.st_mtime_ns, info.st_size)

    def _refresh_shard(self, index: int) -> bool:
        """Reload one shard if its file changed since we last read it.

        Returns True when a reload happened (the caller's miss is worth
        retrying).  The stat is taken *before* the read, so a replace
        racing the read at worst causes one redundant reload later.

        A reader racing a writer's two atomic replaces can catch the
        *old* manifest with the *new* arrays (or vice versa); the
        ``save_id`` check then reports the pulses as skipped.  That
        window is transient — the writer finishes both replaces in
        milliseconds — so a skipped read is retried briefly before the
        skip is accepted; without the retry, a peer blocked on the
        single-flight lock could miss the just-published pulse and
        re-synthesize it, breaking the exactly-once-per-fleet guarantee
        (the multiprocess stress test catches exactly this).

        Reloads serialize on ``_refresh_lock``: two threads missing on
        one shard do a single disk load (the loser re-checks the
        freshness marker and just retries its in-memory miss), and the
        ``shard_loads`` / ``pulse_entries_skipped`` counters only ever
        move under ``_lock``.
        """
        state = self._stat_shard(index)
        with self._lock:
            if state == self._shard_states.get(index, ()):  # () = never looked
                return False
            if state is None:
                self._shard_states[index] = None
                return False
        with self._refresh_lock:
            with self._lock:
                if state == self._shard_states.get(index, ()):
                    return True  # a peer thread just loaded this version
            for attempt in range(5):
                latencies, pulses, skipped = read_pair(self.shard_stem(index))
                if not skipped:
                    break
                time.sleep(0.002 * (attempt + 1))
                state = self._stat_shard(index) or state
            with self._lock:
                for key, value in latencies.items():
                    if key not in self._latencies:
                        self._set_latency(key, value)
                for key, result in pulses.items():
                    if key not in self._pulses:
                        self._set_pulse(key, result)
                self._evict_over_budget()
                self._shard_states[index] = state
                self.pulse_entries_skipped += skipped
                self.shard_loads += 1
        return True

    def load(self) -> int:
        """Read every shard into memory; returns entries loaded."""
        before = self.latency_count + self.pulse_count
        for index in range(self.shards):
            with self._lock:
                self._shard_states.pop(index, None)
            self._refresh_shard(index)
        self.loaded_entries = self.latency_count + self.pulse_count - before
        return self.loaded_entries

    def save(self) -> int:
        """Flush every dirty shard: lock, merge with disk, atomic replace.

        Returns the total entry count of the shards written (union of
        disk and memory, post-trim).  Concurrent flushers of one shard
        serialize on its lock and each write the union, so no entry is
        ever lost to an interleaved flush.
        """
        with self._lock:
            dirty = sorted(self._dirty)
            self._dirty.clear()
        written = 0
        for index in dirty:
            written += self._flush_shard(index)
        return written

    def _flush_shard(self, index: int) -> int:
        lock = FileLock(self._lock_path(f"shard-{index:03d}.lock"))
        with lock:
            disk_lat, disk_pul, _ = read_pair(self.shard_stem(index))
            with self._lock:
                ours_lat = {
                    key: value
                    for key, value in self._latencies.items()
                    if self.shard_of(key) == index
                }
                ours_pul = {
                    key: result
                    for key, result in self._pulses.items()
                    if self.shard_of(key) == index
                }
            merged_lat = {**disk_lat, **ours_lat}
            merged_pul = {**disk_pul, **ours_pul}
            self._trim_shard(merged_lat, merged_pul, ours_lat, ours_pul)
            payload, arrays = encode_pair(merged_lat, merged_pul)
            write_pair(self.shard_stem(index), payload, arrays)
            # Invalidate (never update) the freshness marker: the file we
            # just wrote contains disk entries merged through from *other*
            # processes that were never loaded into memory.  Marking it
            # "seen" would make those entries permanently invisible to the
            # read-through (a miss would compare stats, conclude nothing
            # changed, and skip the reload) — the next miss must re-read.
            with self._lock:
                self._shard_states.pop(index, None)
        self.lock_wait_seconds += lock.waited_seconds
        self.shard_flushes += 1
        return len(merged_lat) + len(merged_pul)

    def _trim_shard(self, latencies, pulses, ours_lat, ours_pul) -> None:
        """Enforce ``max_shard_bytes`` on the about-to-be-written union.

        Disk-only entries go first (no one here has used them since the
        last load), then this process's LRU order; the trim mutates the
        merged maps in place and counts ``disk_evictions``.  Correct for
        the same reason memory eviction is: content-addressed entries
        are recomputed on miss, never answered wrong.  Pulses currently
        inside :meth:`exclusive` are exempt — evicting a pulse in the
        flush that publishes it would make the peers blocked on its key
        lock re-synthesize it, silently voiding the
        exactly-once-per-fleet guarantee even under a tight budget.
        """
        if self.max_shard_bytes is None:
            return
        with self._lock:
            protected = set(self._exclusive_keys)
        sized = []  # (priority, size, kind, key) — evict low priority first
        for key, value in latencies.items():
            size = latency_entry_bytes(key)
            stamp = self._stamps.get(("latency", key), -1)
            sized.append(((key in ours_lat, stamp), size, "latency", key))
        for key, result in pulses.items():
            size = pulse_entry_bytes(key, result)
            stamp = self._stamps.get(("pulse", key), -1)
            sized.append(((key in ours_pul, stamp), size, "pulse", key))
        total = sum(size for _, size, _, _ in sized)
        for priority, size, kind, key in sorted(sized, key=lambda x: x[0]):
            if total <= self.max_shard_bytes or len(sized) == 1:
                break
            if kind == "pulse" and key in protected:
                continue
            del (latencies if kind == "latency" else pulses)[key]
            total -= size
            self.disk_evictions += 1

    # -- single-flight ---------------------------------------------------

    @contextlib.contextmanager
    def exclusive(self, key: PulseKey):
        """Fleet-wide single-flight on one signature via a key lock file.

        While we blocked on the lock, the previous holder synthesized
        and flushed; the caller's re-check then misses in memory and
        read-throughs to the refreshed shard.  On release, everything
        this process has buffered is flushed so *our* synthesis is
        visible before any blocked peer re-checks.
        """
        digest = hashlib.sha256(repr(key).encode()).hexdigest()[:24]
        lock = FileLock(self._lock_path(f"key-{digest}.lock"))
        with lock:
            with self._lock:
                self._exclusive_keys.add(key)
            try:
                yield
            finally:
                try:
                    self.save()
                finally:
                    with self._lock:
                        self._exclusive_keys.discard(key)
        self.lock_wait_seconds += lock.waited_seconds

    # -- metrics ---------------------------------------------------------

    def stats(self) -> dict:
        info = super().stats()
        info.update(
            backend="sharded-disk",
            shards=self.shards,
            shard_loads=self.shard_loads,
            shard_flushes=self.shard_flushes,
            disk_evictions=self.disk_evictions,
            lock_wait_seconds=self.lock_wait_seconds,
            max_shard_bytes=self.max_shard_bytes,
        )
        return info
