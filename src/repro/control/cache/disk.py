"""Disk persistence: the ``<stem>.json`` + ``<stem>.npz`` pair format.

File format (version ``repro-pulse-cache-v1``)
----------------------------------------------
``<stem>.json`` holds every latency entry and the scalar pulse metadata::

    {
      "format": "repro-pulse-cache-v1",
      "latencies": [[fingerprint, backend, signature_repr, value], ...],
      "pulses": [{"fingerprint": ..., "signature": ...,
                  "fidelity": ..., "converged": ..., "iterations": ...,
                  "dt": ..., "control_names": [...], "slot": N}, ...]
    }

``<stem>.npz`` holds the arrays of pulse ``N`` under ``amp<N>`` (control
amplitudes), ``unitary<N>`` (achieved unitary) and ``loss<N>`` (loss
history).  Signatures are serialized with :func:`repr` and parsed back
with :func:`ast.literal_eval`; they are pure literals (strings, numbers,
tuples), so the round trip is exact.

Crash safety: each file is written to a uniquely-named temporary file in
the same directory, fsynced, and :func:`os.replace`'d into place — a
killed writer can truncate only its own temp file, never the live cache.
The *pair* cannot be replaced atomically: both files carry a
content-derived ``save_id``, and :func:`read_pair` refuses to bind pulse
metadata to arrays from a different save (a crash between the two
replaces, or a concurrent writer).  Mismatched or missing arrays degrade
gracefully — the pulse entries are skipped (a cache miss recomputes
them), latencies still load.

The same pair format serves both the single-pair :class:`DiskPulseCache`
and every shard of the sharded directory store (one pair per shard).
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import tempfile

import numpy as np

from repro.control.cache.store import (
    CACHE_FORMAT,
    LatencyKey,
    PulseCache,
    PulseKey,
)
from repro.control.grape import GrapeResult
from repro.control.pulse import Pulse
from repro.errors import ControlError


def encode_pair(
    latencies: dict[LatencyKey, float], pulses: dict[PulseKey, GrapeResult]
) -> tuple[dict, dict]:
    """Entry maps -> (json payload, npz arrays) in the pair format."""
    latency_rows = [
        [fingerprint, backend, repr(signature), value]
        for (fingerprint, backend, signature), value in latencies.items()
    ]
    pulse_rows = []
    arrays: dict[str, np.ndarray] = {}
    for slot, ((fingerprint, signature), result) in enumerate(pulses.items()):
        pulse_rows.append(
            {
                "fingerprint": fingerprint,
                "signature": repr(signature),
                "fidelity": result.fidelity,
                "converged": bool(result.converged),
                "iterations": result.iterations,
                "dt": result.pulse.dt,
                "control_names": list(result.pulse.control_names),
                "slot": slot,
            }
        )
        arrays[f"amp{slot}"] = result.pulse.amplitudes
        arrays[f"unitary{slot}"] = result.final_unitary
        arrays[f"loss{slot}"] = np.asarray(result.loss_history, dtype=float)
    # The digest covers the keys *in slot order*: two saves of the same
    # pulse set inserted in different orders map slots to different
    # arrays, and must not share a save_id.
    save_id = hashlib.sha256(
        "\n".join(
            record["fingerprint"] + record["signature"]
            for record in pulse_rows
        ).encode()
    ).hexdigest()[:16]
    payload = {
        "format": CACHE_FORMAT,
        "save_id": save_id,
        "latencies": latency_rows,
        "pulses": pulse_rows,
    }
    if arrays:
        arrays["save_id"] = np.array(save_id)
    return payload, arrays


def decode_pair(
    payload: dict, arrays: dict, source: str = "cache"
) -> tuple[dict[LatencyKey, float], dict[PulseKey, GrapeResult], int]:
    """(json payload, npz arrays) -> (latencies, pulses, pulses skipped).

    Pulse records are decoded only when the arrays carry the same
    ``save_id`` as the manifest; a torn pair loses the pulses — they are
    recomputed on miss — never mispairs them.
    """
    if payload.get("format") != CACHE_FORMAT:
        raise ControlError(
            f"{source}: unknown cache format {payload.get('format')!r} "
            f"(expected {CACHE_FORMAT!r})"
        )
    arrays_save_id = arrays["save_id"].item() if "save_id" in arrays else None
    pulses_usable = (
        payload.get("save_id") is not None
        and payload.get("save_id") == arrays_save_id
    )
    latencies: dict[LatencyKey, float] = {}
    pulses: dict[PulseKey, GrapeResult] = {}
    for fingerprint, backend, signature, value in payload["latencies"]:
        key = (fingerprint, backend, ast.literal_eval(signature))
        latencies[key] = float(value)
    for record in payload["pulses"] if pulses_usable else ():
        key = (record["fingerprint"], ast.literal_eval(record["signature"]))
        slot = record["slot"]
        pulse = Pulse(
            control_names=list(record["control_names"]),
            amplitudes=arrays[f"amp{slot}"],
            dt=float(record["dt"]),
        )
        pulses[key] = GrapeResult(
            fidelity=float(record["fidelity"]),
            converged=bool(record["converged"]),
            iterations=int(record["iterations"]),
            pulse=pulse,
            final_unitary=arrays[f"unitary{slot}"],
            loss_history=[float(x) for x in arrays[f"loss{slot}"]],
        )
    skipped = 0 if pulses_usable else len(payload["pulses"])
    return latencies, pulses, skipped


def replace_into(data_writer, final_path: str, suffix: str) -> None:
    """Crash-safe write: unique temp file in the same directory, fsync,
    then atomic :func:`os.replace` over the final path.

    The temp name is unique per call (``tempfile.mkstemp``), so two
    processes saving the same stem concurrently each write their own
    temp file and the loser of the final replace race still leaves a
    *complete* file in place — never an interleaved or truncated one.
    """
    directory = os.path.dirname(final_path) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(final_path) + ".", suffix=suffix
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            data_writer(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, final_path)
    except BaseException:
        with_suppressed_oserror(os.unlink, tmp_path)
        raise


def with_suppressed_oserror(func, *args) -> None:
    try:
        func(*args)
    except OSError:
        pass


def write_pair(stem: str, payload: dict, arrays: dict) -> None:
    """Write one ``<stem>.json`` / ``<stem>.npz`` pair crash-safely.

    Arrays land before the manifest: a crash in between leaves the old
    manifest with new arrays, which the ``save_id`` check degrades to a
    pulse-less (but valid) load.
    """
    directory = os.path.dirname(stem)
    if directory:
        os.makedirs(directory, exist_ok=True)
    npz_path = stem + ".npz"
    if arrays:
        replace_into(
            lambda handle: np.savez_compressed(handle, **arrays),
            npz_path,
            ".tmp.npz",
        )
    replace_into(
        lambda handle: handle.write(json.dumps(payload).encode("utf-8")),
        stem + ".json",
        ".tmp.json",
    )
    if not arrays and os.path.exists(npz_path):
        os.remove(npz_path)


def read_pair(
    stem: str,
) -> tuple[dict[LatencyKey, float], dict[PulseKey, GrapeResult], int]:
    """Load one pair from disk; empty maps when the manifest is absent."""
    json_path = stem + ".json"
    if not os.path.exists(json_path):
        return {}, {}, 0
    with open(json_path, encoding="utf-8") as handle:
        payload = json.load(handle)
    arrays = {}
    npz_path = stem + ".npz"
    if os.path.exists(npz_path):
        with np.load(npz_path) as archive:
            arrays = {name: archive[name] for name in archive.files}
    return decode_pair(payload, arrays, source=json_path)


class DiskPulseCache(PulseCache):
    """A :class:`PulseCache` persisted as ``<stem>.json`` + ``<stem>.npz``.

    Args:
        path: File stem; ``.json``/``.npz`` suffixes are appended (a
            ``.json`` suffix on the stem itself is stripped first, so both
            spellings address the same pair).
        autoload: Load existing files immediately (default).
        max_bytes: Optional LRU byte budget (see :class:`PulseCache`);
            the budget governs what is resident *and* what the next
            :meth:`save` writes.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        autoload: bool = True,
        max_bytes: int | None = None,
    ) -> None:
        super().__init__(max_bytes=max_bytes)
        stem = os.fspath(path)
        if stem.endswith(".json") or stem.endswith(".npz"):
            stem = stem.rsplit(".", 1)[0]
        self.stem = stem
        self.loaded_entries = 0
        self.pulse_entries_skipped = 0
        if autoload:
            self.load()

    @property
    def json_path(self) -> str:
        return self.stem + ".json"

    @property
    def npz_path(self) -> str:
        return self.stem + ".npz"

    def load(self) -> int:
        """Merge any on-disk entries into memory; returns entries read.

        In-memory entries win over disk ones with the same key (they are
        the same value under the content-addressed key contract, and the
        resident entry may be fresher in LRU terms).
        """
        latencies, pulses, skipped = read_pair(self.stem)
        self.pulse_entries_skipped = skipped
        read = 0
        with self._lock:
            for key, value in latencies.items():
                if key not in self._latencies:
                    self._set_latency(key, value)
                read += 1
            for key, result in pulses.items():
                if key not in self._pulses:
                    self._set_pulse(key, result)
                read += 1
            self._evict_over_budget()
        self.loaded_entries = read
        return read

    def save(self) -> int:
        """Write the whole store to disk; returns entries written.

        Both files are written crash-safely (unique temp + fsync +
        atomic replace) and carry a content-derived ``save_id`` that
        :meth:`load` checks before pairing them.
        """
        with self._lock:
            payload, arrays = encode_pair(self._latencies, self._pulses)
            written = len(self._latencies) + len(self._pulses)
        write_pair(self.stem, payload, arrays)
        return written
