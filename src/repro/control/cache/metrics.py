"""Cache metrics helpers: hit rates and the one-line exit-bill summary.

Every backend's :meth:`~repro.control.cache.store.PulseCache.stats`
returns a flat dict; these helpers turn it into the human line the
runner prints next to the GRAPE bill and the ratios the benchmarks
assert on.
"""

from __future__ import annotations


def hit_rate(hits: int, misses: int) -> float | None:
    """Hits over lookups; ``None`` when there were no lookups."""
    total = hits + misses
    if not total:
        return None
    return hits / total


def format_bytes(count: int) -> str:
    """1536 -> '1.5 KiB'."""
    size = float(count)
    for suffix in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or suffix == "GiB":
            return f"{size:.1f} {suffix}" if suffix != "B" else f"{int(size)} B"
        size /= 1024
    return f"{size:.1f} GiB"  # pragma: no cover - loop always returns


def _rate_fragment(label: str, hits: int, misses: int) -> str | None:
    rate = hit_rate(hits, misses)
    if rate is None:
        return None
    return f"{label} {hits}/{hits + misses} ({rate:.0%})"


def cache_summary(stats: dict) -> str:
    """One line for the exit bill, shaped by the backend.

    Examples::

        cache[memory]: 42 latencies + 6 pulses | hits 120/126 (95%)
        cache[sharded-disk]: ... | 8 shards, 3 flushes | evicted 2 (1.2 KiB)
        cache[remote 127.0.0.1:7777]: ... | remote 5/9 (56%) in 14 round trips
    """
    backend = stats.get("backend", "memory")
    label = backend
    if backend == "remote" and stats.get("url"):
        label = f"remote {stats['url']}"
    parts = [
        f"{stats.get('latency_entries', 0)} latencies "
        f"+ {stats.get('pulse_entries', 0)} pulses"
    ]
    local = _rate_fragment(
        "hits", stats.get("store_hits", 0), stats.get("store_misses", 0)
    )
    if local:
        parts.append(local)
    if backend == "remote":
        remote = _rate_fragment(
            "remote", stats.get("remote_hits", 0), stats.get("remote_misses", 0)
        )
        if remote:
            parts.append(
                f"{remote} in {stats.get('remote_requests', 0)} round trips"
            )
    if backend == "sharded-disk":
        parts.append(
            f"{stats.get('shards', 0)} shards, "
            f"{stats.get('shard_flushes', 0)} flushes"
        )
    if stats.get("evictions"):
        parts.append(
            f"evicted {stats['evictions']} "
            f"({format_bytes(stats.get('evicted_bytes', 0))})"
        )
    if stats.get("max_bytes"):
        parts.append(
            f"{format_bytes(stats.get('total_bytes', 0))}"
            f"/{format_bytes(stats['max_bytes'])}"
        )
    return f"cache[{label}]: " + " | ".join(parts)
