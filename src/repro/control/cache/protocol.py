"""Length-prefixed JSON framing for the cache server wire protocol.

Every message — request or response — is one JSON object encoded as
UTF-8 and prefixed with its byte length as a 4-byte big-endian unsigned
integer.  Values ride the :mod:`repro.ir` ``repro-ir-v1`` wire format
(pulses as ``grape_result`` envelopes, batched uploads as
``cache_delta`` envelopes, statistics as ``cache_stats`` envelopes);
cache keys use the disk-cache convention — structural signatures
serialized with :func:`repr` and parsed back with
:func:`ast.literal_eval`, so the round trip is exact.

Requests are ``{"op": <name>, ...}``; responses are ``{"ok": true, ...}``
or ``{"ok": false, "error": <message>}``.  Operations:

========== ==================================================== =================
op          request fields                                       response fields
========== ==================================================== =================
ping        —                                                    —
get_latency ``key`` (wire latency key)                           ``found``, ``value``
get_pulse   ``key`` (wire pulse key)                             ``found``, ``result``
push_delta  ``delta`` (``cache_delta`` envelope)                 ``added``
stats       —                                                    ``stats`` (``cache_stats``)
lock        ``key`` (wire pulse key), ``owner``, ``ttl`` (opt.)  ``granted``
unlock      ``key`` (wire pulse key), ``owner``                  ``released``
========== ==================================================== =================

``ttl`` on ``lock`` is an optional requested lease length in seconds;
the server clamps it to its own floor/ceiling (see
:data:`repro.control.cache.server.MAX_LOCK_TTL_SECONDS`) and falls back
to its configured default when absent.  A ``lock`` re-sent by the
current holder renews the lease rather than failing.
"""

from __future__ import annotations

import ast
import json
import socket
import struct

from repro.errors import ControlError

PROTOCOL_FORMAT = "repro-pulse-wire-v1"

#: Hard cap on one frame.  A pulse delta for a 3-qubit instruction is a
#: few hundred KB; anything near this size is a protocol error, not a
#: workload.
MAX_MESSAGE_BYTES = 512 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(ControlError):
    """A malformed frame or an error response from the cache server."""


def send_message(sock: socket.socket, payload: dict) -> None:
    """Write one length-prefixed JSON frame."""
    data = json.dumps(payload).encode("utf-8")
    if len(data) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"refusing to send a {len(data)}-byte frame "
            f"(cap {MAX_MESSAGE_BYTES})"
        )
    sock.sendall(_HEADER.pack(len(data)) + data)


def recv_message(sock: socket.socket) -> dict | None:
    """Read one frame; None on clean EOF at a frame boundary."""
    header = _recv_exact(sock, _HEADER.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"peer announced a {length}-byte frame (cap {MAX_MESSAGE_BYTES})"
        )
    data = _recv_exact(sock, length, eof_ok=False)
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable frame: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"expected a JSON object frame, got {type(payload).__name__}"
        )
    return payload


def _recv_exact(sock: socket.socket, count: int, eof_ok: bool):
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if eof_ok and remaining == count:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining}/{count} "
                f"bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# -- addresses -----------------------------------------------------------


def reachable_host(host: str) -> str:
    """A host clients can actually connect to, given a bind address.

    A server bound to a wildcard address (``0.0.0.0``, ``""``, or the
    IPv6 ``::``) listens on every interface, but the wildcard itself is
    not a connectable destination — advertising ``0.0.0.0:PORT`` in a
    ``url`` hands clients a dead address.  Loopback is the one interface
    a wildcard bind is always reachable on from the same machine, so
    that is what servers advertise; fleet operators reaching a wildcard-
    bound server from *other* machines address it by its real interface
    name, which only they know.
    """
    if host in ("0.0.0.0", ""):
        return "127.0.0.1"
    if host in ("::", "::0"):
        return "::1"
    return host


# -- key wire forms ------------------------------------------------------


def encode_latency_key(key: tuple) -> list:
    """(fingerprint, backend, signature) -> JSON-safe triple."""
    fingerprint, backend, signature = key
    return [fingerprint, backend, repr(signature)]


def decode_latency_key(wire: list) -> tuple:
    fingerprint, backend, signature = wire
    return (fingerprint, backend, ast.literal_eval(signature))


def encode_pulse_key(key: tuple) -> list:
    """(fingerprint, signature) -> JSON-safe pair."""
    fingerprint, signature = key
    return [fingerprint, repr(signature)]


def decode_pulse_key(wire: list) -> tuple:
    fingerprint, signature = wire
    return (fingerprint, ast.literal_eval(signature))
