"""Client side of the shared cache: read-through, write-behind.

:class:`RemotePulseCache` subclasses :class:`PulseCache`, so the whole
compiler stack mounts it unchanged: the in-memory base acts as the local
L1, remote round trips happen only on L1 misses, and writes are buffered
into a pending :class:`CacheDelta` that uploads in batches (amortizing
one socket round trip over many entries).  The fleet-wide exactly-once
guarantee comes from :meth:`exclusive`, which holds a server-side lease
for the signature being synthesized and publishes the finished pulse
before releasing it.
"""

from __future__ import annotations

import contextlib
import os
import socket
import threading
import time

from repro.control.cache.protocol import (
    ProtocolError,
    encode_latency_key,
    encode_pulse_key,
    recv_message,
    send_message,
)
from repro.control.cache.store import CacheDelta, PulseCache
from repro.control.grape import GrapeResult

#: Entries buffered locally before a background ``push_delta`` upload.
DEFAULT_FLUSH_THRESHOLD = 32

#: Lease poll cadence while another client synthesizes our signature.
_LEASE_POLL_SECONDS = 0.05
_LEASE_POLL_MAX_SECONDS = 1.0


def parse_cache_url(url: str) -> tuple[str, int]:
    """``host:port`` or ``tcp://host:port`` -> (host, port)."""
    spec = url.strip()
    if spec.startswith("tcp://"):
        spec = spec[len("tcp://") :]
    host, separator, port = spec.rpartition(":")
    if not separator or not host:
        raise ProtocolError(
            f"cache url {url!r} is not host:port or tcp://host:port"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ProtocolError(f"cache url {url!r} has a non-numeric port") from None


class RemotePulseCache(PulseCache):
    """A :class:`PulseCache` backed by a shared cache server.

    Args:
        url: Server address, ``host:port`` or ``tcp://host:port``.
        max_bytes: Optional LRU budget for the *local* L1 (the server
            enforces its own budget fleet-wide).
        flush_threshold: Buffered entries that trigger an upload; 0
            writes through on every put.
        timeout: Socket timeout per round trip, seconds.
        lock_ttl: Optional lease length (seconds) requested with each
            ``lock`` op; ``None`` accepts the server's default.  Raise
            it for syntheses that may outlive the server-side default —
            the server clamps the request to its own ceiling.
    """

    def __init__(
        self,
        url: str,
        max_bytes: int | None = None,
        flush_threshold: int = DEFAULT_FLUSH_THRESHOLD,
        timeout: float = 30.0,
        lock_ttl: float | None = None,
    ) -> None:
        super().__init__(max_bytes=max_bytes)
        self.url = url
        self.host, self.port = parse_cache_url(url)
        self.flush_threshold = max(0, int(flush_threshold))
        self.timeout = timeout
        self.lock_ttl = lock_ttl
        self.owner = f"{socket.gethostname()}:{os.getpid()}:{id(self):x}"
        self._pending = CacheDelta()
        self._sock: socket.socket | None = None
        #: Serializes the single socket *and* the pending delta across
        #: the batch engine's thread-pool workers, which all read through
        #: one shared client; interleaved frames would cross responses
        #: between threads.  Reentrant because ``flush`` calls
        #: ``_request`` while holding it.  (The inherited ``_lock``
        #: covers only the in-memory L1.)
        self._io_lock = threading.RLock()
        self.remote_hits = 0
        self.remote_misses = 0
        self.remote_requests = 0
        self.remote_seconds = 0.0
        self.flushes = 0
        self.flushed_entries = 0
        self.lease_wait_seconds = 0.0

    # -- pickling: sockets cannot cross process boundaries ---------------

    def __getstate__(self):
        self.flush()
        state = super().__getstate__()
        state["_sock"] = None
        del state["_io_lock"]
        return state

    def __setstate__(self, state) -> None:
        super().__setstate__(state)
        self._io_lock = threading.RLock()
        # A forked/unpickled copy is a distinct lease holder.
        self.owner = f"{socket.gethostname()}:{os.getpid()}:{id(self):x}"

    # -- transport -------------------------------------------------------

    def _connect(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        return self._sock

    def _request(self, payload: dict) -> dict:
        """One round trip; reconnects once on a dropped connection.

        Holds ``_io_lock`` for the whole round trip so concurrent
        threads cannot interleave frames or receive each other's
        responses on the shared socket.
        """
        with self._io_lock:
            started = time.perf_counter()
            for attempt in (0, 1):
                sock = self._connect()
                try:
                    send_message(sock, payload)
                    response = recv_message(sock)
                    if response is None:
                        raise ProtocolError("server closed the connection")
                    break
                except (OSError, ProtocolError):
                    self._drop_connection()
                    if attempt:
                        raise
            self.remote_requests += 1
            self.remote_seconds += time.perf_counter() - started
        if not response.get("ok"):
            raise ProtocolError(
                f"cache server {self.url}: {response.get('error', 'unknown error')}"
            )
        return response

    def _drop_connection(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            with contextlib.suppress(OSError):
                sock.close()

    # -- lookups: L1 first, then the server ------------------------------

    def get_latency(self, key: tuple) -> float | None:
        value = super().get_latency(key)
        if value is not None:
            return value
        response = self._request(
            {"op": "get_latency", "key": encode_latency_key(key)}
        )
        if not response["found"]:
            self.remote_misses += 1
            return None
        self.remote_hits += 1
        value = float(response["value"])
        with self._lock:
            self._set_latency(key, value)
            self._evict_over_budget(protect=("latency", key))
        return value

    def get_pulse(self, key: tuple) -> GrapeResult | None:
        result = super().get_pulse(key)
        if result is not None:
            return result
        response = self._request({"op": "get_pulse", "key": encode_pulse_key(key)})
        if not response["found"]:
            self.remote_misses += 1
            return None
        from repro.ir.serialize import grape_result_from_dict

        self.remote_hits += 1
        result = grape_result_from_dict(response["result"])
        with self._lock:
            self._set_pulse(key, result)
            self._evict_over_budget(protect=("pulse", key))
        return result

    # -- writes: L1 immediately, server in batches -----------------------

    def put_latency(self, key: tuple, value: float) -> None:
        super().put_latency(key, value)
        with self._io_lock:
            self._pending.latencies[key] = float(value)
            self._maybe_flush()

    def put_pulse(self, key: tuple, result: GrapeResult) -> None:
        super().put_pulse(key, result)
        with self._io_lock:
            self._pending.pulses[key] = result
            self._maybe_flush()

    def merge_delta(self, delta: CacheDelta) -> int:
        """Merge locally and forward the whole delta upstream.

        The batch engine merges each finished job's session delta here;
        forwarding it (rather than only the locally-new slice) is safe —
        the server's own ``merge_delta`` is idempotent — and keeps the
        server warm even for entries this client learned remotely.
        """
        added = super().merge_delta(delta)
        with self._io_lock:
            self._pending.extend(delta)
            self._maybe_flush()
        return added

    def _maybe_flush(self) -> None:
        if len(self._pending) > self.flush_threshold:
            self.flush()

    def flush(self) -> int:
        """Upload the pending delta now; returns entries uploaded.

        On upload failure the swapped-out delta is restored, so buffered
        entries survive a dropped server and ride the next flush.
        """
        with self._io_lock:
            if not len(self._pending):
                return 0
            from repro.ir.serialize import cache_delta_to_dict

            delta, self._pending = self._pending, CacheDelta()
            try:
                self._request(
                    {"op": "push_delta", "delta": cache_delta_to_dict(delta)}
                )
            except Exception:
                delta.extend(self._pending)
                self._pending = delta
                raise
            self.flushes += 1
            self.flushed_entries += len(delta)
            return len(delta)

    def save(self) -> int:
        """For the remote backend, persisting means flushing upstream."""
        return self.flush()

    def close(self) -> None:
        with self._io_lock:
            self.flush()
            self._drop_connection()

    def __enter__(self) -> RemotePulseCache:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- single-flight ----------------------------------------------------

    @contextlib.contextmanager
    def exclusive(self, key: tuple):
        """Fleet-wide single flight via a server-side lease.

        Polls until the lease for ``key`` is granted (another client
        holding it is synthesizing the same signature; when it publishes
        and releases, our caller's re-check inside the guard finds the
        pulse remotely).  The pending delta is flushed *before* the lease
        is released, so the publish-before-release contract holds across
        the network too.

        When :attr:`lock_ttl` is set it rides the ``lock`` op, so long
        syntheses can request a lease that outlives the server default
        (re-sending ``lock`` as the holder would likewise renew it).
        """
        wire = encode_pulse_key(key)
        acquire = {"op": "lock", "key": wire, "owner": self.owner}
        if self.lock_ttl is not None:
            acquire["ttl"] = float(self.lock_ttl)
        delay = _LEASE_POLL_SECONDS
        started = time.perf_counter()
        while not self._request(acquire)["granted"]:
            time.sleep(delay)
            delay = min(delay * 2, _LEASE_POLL_MAX_SECONDS)
        self.lease_wait_seconds += time.perf_counter() - started
        try:
            yield
            self.flush()
        finally:
            self._request({"op": "unlock", "key": wire, "owner": self.owner})

    # -- metrics ---------------------------------------------------------

    def server_stats(self) -> dict:
        """The server's own stats() (store + request counters)."""
        from repro.ir.serialize import cache_stats_from_dict

        return cache_stats_from_dict(self._request({"op": "stats"})["stats"])

    def stats(self) -> dict:
        info = super().stats()
        info.update(
            backend="remote",
            url=self.url,
            remote_hits=self.remote_hits,
            remote_misses=self.remote_misses,
            remote_requests=self.remote_requests,
            remote_seconds=self.remote_seconds,
            flushes=self.flushes,
            flushed_entries=self.flushed_entries,
            pending_entries=len(self._pending),
            lease_wait_seconds=self.lease_wait_seconds,
        )
        return info


__all__ = ["DEFAULT_FLUSH_THRESHOLD", "RemotePulseCache", "parse_cache_url"]
