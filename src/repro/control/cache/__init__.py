"""The shared pulse cache: one warm store, however many processes.

Layering (each module builds on the previous):

* :mod:`.store` — in-memory :class:`PulseCache` (thread-safe, LRU byte
  budgets), :class:`CacheSession` (worker-local buffered view),
  :class:`CacheDelta` (the merge unit), :func:`config_fingerprint`.
* :mod:`.disk` — the ``<stem>.json``/``.npz`` pair format and the
  single-pair :class:`DiskPulseCache`.
* :mod:`.locking` — advisory ``flock`` file locks.
* :mod:`.sharded` — :class:`ShardedDiskPulseCache`: many processes on
  one box share a directory of shard pairs, no server needed.
* :mod:`.protocol` / :mod:`.server` / :mod:`.client` — the socket
  protocol, :class:`CacheServer` (``python -m repro.control.cache_server``)
  and :class:`RemotePulseCache` for sharing across boxes.
* :mod:`.metrics` — hit-rate helpers and the exit-bill summary line.

All four store backends are drop-in :class:`PulseCache` subclasses; use
:func:`resolve_cache` to build one from CLI-style flags.
"""

from __future__ import annotations

import os

from repro.control.cache.client import RemotePulseCache, parse_cache_url
from repro.control.cache.disk import DiskPulseCache
from repro.control.cache.locking import HAVE_FILE_LOCKS, FileLock
from repro.control.cache.metrics import cache_summary, hit_rate
from repro.control.cache.protocol import PROTOCOL_FORMAT, ProtocolError
from repro.control.cache.server import CacheServer
from repro.control.cache.sharded import DEFAULT_SHARDS, ShardedDiskPulseCache
from repro.control.cache.store import (
    CACHE_FORMAT,
    CacheDelta,
    CacheSession,
    PulseCache,
    config_fingerprint,
)

__all__ = [
    "CACHE_FORMAT",
    "DEFAULT_SHARDS",
    "HAVE_FILE_LOCKS",
    "PROTOCOL_FORMAT",
    "CacheDelta",
    "CacheServer",
    "CacheSession",
    "DiskPulseCache",
    "FileLock",
    "ProtocolError",
    "PulseCache",
    "RemotePulseCache",
    "ShardedDiskPulseCache",
    "cache_summary",
    "config_fingerprint",
    "hit_rate",
    "parse_cache_url",
    "resolve_cache",
]


def resolve_cache(
    path: str | None = None,
    url: str | None = None,
    shards: int | None = None,
    max_bytes: int | None = None,
    max_shard_bytes: int | None = None,
) -> PulseCache | None:
    """Build the right cache backend from CLI-style flags.

    Precedence: ``url`` mounts a :class:`RemotePulseCache`; ``path``
    with ``shards`` (or pointing at an existing sharded directory)
    mounts a :class:`ShardedDiskPulseCache`; a bare ``path`` mounts the
    single-pair :class:`DiskPulseCache`; nothing returns ``None``
    (fully in-memory compilation, the historical default).
    """
    if url:
        return RemotePulseCache(url, max_bytes=max_bytes)
    if path is None:
        return None
    is_sharded_dir = os.path.isfile(os.path.join(path, "sharding.json"))
    if shards is not None or is_sharded_dir or os.path.isdir(path):
        return ShardedDiskPulseCache(
            path,
            shards=shards,
            max_bytes=max_bytes,
            max_shard_bytes=max_shard_bytes,
        )
    return DiskPulseCache(path, max_bytes=max_bytes)
