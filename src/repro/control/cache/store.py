"""In-memory pulse/latency store: fingerprints, deltas, LRU eviction.

The base layer of the shared-cache stack (see the package docstring).
:class:`PulseCache` is the thread-safe store every other backend builds
on; :class:`CacheSession` is the worker-local buffered view the batch
engine compiles through; :class:`CacheDelta` is the unit of merge both
use.  Everything cross-process — disk pairs, shards, the socket server —
lives in sibling modules and subclasses :class:`PulseCache`.

Eviction
--------
Pass ``max_bytes`` to bound the store.  Entries (latencies *and* pulses,
one recency order across both) are tracked with an approximate byte size
(:func:`latency_entry_bytes` / :func:`pulse_entry_bytes`) and the least
recently used entries are dropped whenever the total exceeds the budget.
Keys are content-addressed — a structural signature plus a configuration
fingerprint fully determines the value — so eviction is always *correct*:
a dropped entry is recomputed on the next miss, never answered wrong.
The entry being written is never the eviction victim, so ``put`` followed
by ``get`` always hits even when one entry exceeds the whole budget.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import threading
import time
from collections import OrderedDict

import numpy as np

from repro.config import CompilerConfig, DeviceConfig
from repro.control.grape import GrapeResult

CACHE_FORMAT = "repro-pulse-cache-v1"

#: A latency entry key: (fingerprint, backend tag, structural signature).
LatencyKey = tuple
#: A pulse entry key: (fingerprint, structural signature).
PulseKey = tuple

#: Flat bookkeeping charge per entry (key objects, dict slots, stamps).
_ENTRY_OVERHEAD_BYTES = 64


def config_fingerprint(
    device: DeviceConfig,
    compiler: CompilerConfig,
    grape_qubit_limit: int,
    grape_dt: float,
    seed: int,
    target=None,
    grape_kernel: str = "vectorized",
    grape_warm_start: bool = True,
    grape_plateau_iterations: int | None = 60,
) -> str:
    """Digest of everything that changes cached latencies or pulses.

    Two units agree on every cache entry iff their fingerprints match, so
    entries from incompatible configurations can coexist in one store
    without ever being confused.

    Args:
        device: Homogeneous baseline physics.
        target: Optional full :class:`~repro.device.device.Device`.  Its
            :meth:`~repro.device.device.Device.coupling_signature` —
            topology wiring plus the per-edge coupling overrides — is
            folded in whenever the device carries such overrides, so entries
            computed for heterogeneously-priced devices can never
            collide with another device's.  Any other target hashes
            identically to a bare ``DeviceConfig``: latencies and pulses
            then depend only on instruction structure and the baseline
            physics (t1/t2 overrides feed the decoherence model, never
            the cache), so sharing entries across topologies is free
            warm-cache coverage, not a collision.
    """
    compiler_payload = dataclasses.asdict(compiler)
    # The aggregation-loop round cap shapes which merges execute, never
    # the latency or pulse of a given instruction — hashing it would
    # cold-start the cache on every ablation of the cap.
    compiler_payload.pop("max_aggregation_rounds", None)
    payload = {
        "device": dataclasses.asdict(device),
        "compiler": compiler_payload,
        "grape_qubit_limit": int(grape_qubit_limit),
        "grape_dt": float(grape_dt),
        "seed": int(seed),
    }
    if target is not None and target.has_heterogeneous_couplings:
        payload["target"] = repr(target.coupling_signature())
    # Algorithm variants fold in only when they differ from the default
    # fast path: the default fingerprint is stable across releases, while
    # pulses from the legacy kernel / cold-restart search (whose Adam
    # trajectories differ) can never collide with fast-path entries.
    if grape_kernel != "vectorized":
        payload["grape_kernel"] = grape_kernel
    if not grape_warm_start:
        payload["grape_warm_start"] = False
    if grape_plateau_iterations != 60:
        payload["grape_plateau_iterations"] = grape_plateau_iterations
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def latency_entry_bytes(key: LatencyKey) -> int:
    """Approximate resident size of one latency entry."""
    return _ENTRY_OVERHEAD_BYTES + len(repr(key)) + 8


def pulse_entry_bytes(key: PulseKey, result: GrapeResult) -> int:
    """Approximate resident size of one pulse entry (array-dominated)."""
    arrays = (
        np.asarray(result.pulse.amplitudes).nbytes
        + np.asarray(result.final_unitary).nbytes
        + 8 * len(result.loss_history)
    )
    return _ENTRY_OVERHEAD_BYTES + len(repr(key)) + arrays


@dataclasses.dataclass
class CacheDelta:
    """Entries a worker added on top of a shared store."""

    latencies: dict[LatencyKey, float] = dataclasses.field(default_factory=dict)
    pulses: dict[PulseKey, GrapeResult] = dataclasses.field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.latencies) + len(self.pulses)

    def extend(self, other: CacheDelta) -> None:
        """Fold another delta's entries into this one (last write wins)."""
        self.latencies.update(other.latencies)
        self.pulses.update(other.pulses)


class PulseCache:
    """Thread-safe in-memory latency/pulse store.

    The same store may back many optimal-control units at once (the batch
    engine's workers); all mutation happens under one lock.

    Args:
        max_bytes: Optional LRU eviction budget (see the module
            docstring).  ``None`` (default) means unbounded.
    """

    def __init__(self, max_bytes: int | None = None) -> None:
        self._latencies: OrderedDict[LatencyKey, float] = OrderedDict()
        self._pulses: OrderedDict[PulseKey, GrapeResult] = OrderedDict()
        self._lock = threading.Lock()
        #: Global recency stamp per ("latency"|"pulse", key); the fronts
        #: of the two OrderedDicts are each map's LRU entry, and the
        #: stamp orders those two fronts against each other.
        self._stamps: dict[tuple, int] = {}
        self._sizes: dict[tuple, int] = {}
        self._tick = 0
        self.max_bytes = max_bytes
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.evicted_bytes = 0
        self.lookup_seconds = 0.0

    # -- pickling: locks cannot cross process boundaries -----------------

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- lookups ---------------------------------------------------------

    def get_latency(self, key: LatencyKey) -> float | None:
        started = time.perf_counter()
        with self._lock:
            value = self._latencies.get(key)
            if value is None:
                self.misses += 1
            else:
                self.hits += 1
                self._touch("latency", key)
            self.lookup_seconds += time.perf_counter() - started
            return value

    def put_latency(self, key: LatencyKey, value: float) -> None:
        with self._lock:
            self._set_latency(key, float(value))
            self.stores += 1
            self._evict_over_budget(protect=("latency", key))

    def get_pulse(self, key: PulseKey) -> GrapeResult | None:
        started = time.perf_counter()
        with self._lock:
            result = self._pulses.get(key)
            if result is None:
                self.misses += 1
            else:
                self.hits += 1
                self._touch("pulse", key)
            self.lookup_seconds += time.perf_counter() - started
            return result

    def put_pulse(self, key: PulseKey, result: GrapeResult) -> None:
        with self._lock:
            self._set_pulse(key, result)
            self.stores += 1
            self._evict_over_budget(protect=("pulse", key))

    # -- single-flight ----------------------------------------------------

    @contextlib.contextmanager
    def exclusive(self, key: PulseKey):
        """Single-flight guard around one expensive synthesis.

        The optimal-control unit wraps GRAPE synthesis in
        ``with cache.exclusive(key): re-check; synthesize; put`` so that
        backends with cross-process peers (the sharded directory store,
        the remote client) can serialize fleet-wide synthesis of one
        signature and publish the result before releasing.  The in-memory
        base store has no peers, so this is a no-op — in-process thread
        dedup is the pre-warm planner's job, and keeping the historical
        behavior bit-identical keeps the PR 7 parity suites meaningful.
        """
        yield

    # -- bulk operations -------------------------------------------------

    def merge_delta(self, delta: CacheDelta) -> int:
        """Fold a worker's delta in; returns how many entries were *new*.

        Last write wins on keys both sides hold — safe because keys are
        content-addressed, so both sides hold the same value (modulo
        recomputation of bit-identical results).  The count covers keys
        the store had never seen: merging the same delta twice reports
        the second merge as 0, and interleaved merges from two sessions
        commute (``tests/control/test_cache.py`` pins both properties).
        """
        added = 0
        with self._lock:
            for key, value in delta.latencies.items():
                if self._set_latency(key, float(value)):
                    added += 1
                self.stores += 1
            for key, result in delta.pulses.items():
                if self._set_pulse(key, result):
                    added += 1
                self.stores += 1
            self._evict_over_budget()
        return added

    def snapshot_delta(self) -> CacheDelta:
        """The whole store as one :class:`CacheDelta` (copied under lock).

        This is how a warm store travels: serialize the snapshot
        (:func:`repro.ir.serialize.cache_delta_to_dict`), ship it across
        the process boundary, and ``merge_delta`` it into the far store —
        the batch engine seeds each worker process this way so warm
        caches skip optimal-control work in process mode too.
        """
        with self._lock:
            return CacheDelta(
                latencies=dict(self._latencies), pulses=dict(self._pulses)
            )

    def save(self) -> int:
        """Persist the store where the backend supports it.

        The in-memory base has nothing to persist; disk-backed, sharded
        and remote subclasses override.  Always safe to call — drivers
        can ``engine.save_cache()`` without caring which backend is
        mounted.
        """
        return 0

    @property
    def latency_count(self) -> int:
        return len(self._latencies)

    @property
    def pulse_count(self) -> int:
        return len(self._pulses)

    def stats(self) -> dict:
        """Store-level counters (per-unit counters live on the OCU).

        Every backend reports at least these fields; subclasses add
        their own (shard loads, remote round trips, ...) on top.
        ``lookup_seconds`` is the cumulative wall-clock spent answering
        ``get_*`` calls — microseconds here, but the same field measures
        real network round trips on the remote backend.
        """
        return {
            "backend": "memory",
            "latency_entries": self.latency_count,
            "pulse_entries": self.pulse_count,
            "store_hits": self.hits,
            "store_misses": self.misses,
            "store_writes": self.stores,
            "evictions": self.evictions,
            "evicted_bytes": self.evicted_bytes,
            "total_bytes": self.total_bytes,
            "max_bytes": self.max_bytes,
            "lookup_seconds": self.lookup_seconds,
        }

    # -- internals (call with the lock held) ------------------------------

    def _touch(self, kind: str, key: tuple) -> None:
        mapping = self._latencies if kind == "latency" else self._pulses
        mapping.move_to_end(key)
        self._tick += 1
        self._stamps[(kind, key)] = self._tick

    def _set_latency(self, key: LatencyKey, value: float) -> bool:
        """Insert/overwrite one latency entry; True when the key is new."""
        fresh = key not in self._latencies
        if not fresh:
            self.total_bytes -= self._sizes[("latency", key)]
        self._latencies[key] = value
        size = latency_entry_bytes(key)
        self._sizes[("latency", key)] = size
        self.total_bytes += size
        self._touch("latency", key)
        return fresh

    def _set_pulse(self, key: PulseKey, result: GrapeResult) -> bool:
        fresh = key not in self._pulses
        if not fresh:
            self.total_bytes -= self._sizes[("pulse", key)]
        self._pulses[key] = result
        size = pulse_entry_bytes(key, result)
        self._sizes[("pulse", key)] = size
        self.total_bytes += size
        self._touch("pulse", key)
        return fresh

    def _lru_of(self, mapping, kind: str, protect):
        for key in mapping:
            if protect == (kind, key):
                continue
            return (self._stamps[(kind, key)], kind, key)
        return None

    def _evict_over_budget(self, protect: tuple | None = None) -> None:
        """Drop globally-LRU entries until the byte budget is met.

        ``protect`` names the entry being written right now: it is never
        the victim, so a single oversized entry still round-trips.
        """
        if self.max_bytes is None:
            return
        while self.total_bytes > self.max_bytes:
            candidates = [
                entry
                for entry in (
                    self._lru_of(self._latencies, "latency", protect),
                    self._lru_of(self._pulses, "pulse", protect),
                )
                if entry is not None
            ]
            if not candidates:
                return
            _, kind, key = min(candidates)
            self._evict_entry(kind, key)

    def _evict_entry(self, kind: str, key: tuple) -> None:
        mapping = self._latencies if kind == "latency" else self._pulses
        del mapping[key]
        self._stamps.pop((kind, key), None)
        size = self._sizes.pop((kind, key))
        self.total_bytes -= size
        self.evictions += 1
        self.evicted_bytes += size


class CacheSession:
    """Worker-local cache view: read-through, buffered writes.

    Exposes the same interface as :class:`PulseCache`, so an
    :class:`~repro.control.unit.OptimalControlUnit` can be constructed
    directly on top of it.  All writes land in :attr:`delta`; the batch
    engine merges the delta into the shared store when the job finishes,
    which keeps workers from contending on the store's lock for every
    query while still letting later jobs reuse earlier jobs' work.

    The session keeps its own :attr:`hits`/:attr:`misses` counters — a
    hit is answered by either layer (the buffered delta or the shared
    store), a miss by neither — so per-worker hit rates stay observable
    even when many sessions share one store.
    """

    def __init__(self, store: PulseCache) -> None:
        self.store = store
        self.delta = CacheDelta()
        self.hits = 0
        self.misses = 0

    def get_latency(self, key: LatencyKey) -> float | None:
        value = self.delta.latencies.get(key)
        if value is None:
            value = self.store.get_latency(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put_latency(self, key: LatencyKey, value: float) -> None:
        self.delta.latencies[key] = float(value)

    def get_pulse(self, key: PulseKey) -> GrapeResult | None:
        result = self.delta.pulses.get(key)
        if result is None:
            result = self.store.get_pulse(key)
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def put_pulse(self, key: PulseKey, result: GrapeResult) -> None:
        self.delta.pulses[key] = result

    @contextlib.contextmanager
    def exclusive(self, key: PulseKey):
        """Delegate single-flight to the store, publishing through it.

        A pulse synthesized inside the guard is buffered in the session
        delta as usual, but is *also* written through to the store before
        the store's guard releases — cross-process backends flush to
        their shared medium on release, so a peer that was blocked on
        the same signature finds the finished pulse instead of
        re-synthesizing it.  (The later ``merge_delta`` of the full
        session delta then reports it as not-new, which is exactly the
        idempotence ``merge_delta`` guarantees.)
        """
        with self.store.exclusive(key):
            yield
            result = self.delta.pulses.get(key)
            if result is not None:
                self.store.put_pulse(key, result)

    @property
    def latency_count(self) -> int:
        return self.store.latency_count + len(self.delta.latencies)

    @property
    def pulse_count(self) -> int:
        return self.store.pulse_count + len(self.delta.pulses)

    def stats(self) -> dict:
        """Session hit/miss counters over the backing store's stats."""
        info = self.store.stats()
        info["session_hits"] = self.hits
        info["session_misses"] = self.misses
        info["session_buffered"] = len(self.delta)
        return info
