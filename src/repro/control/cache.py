"""Shared pulse/latency caches: the persistent half of partial compilation.

The optimal-control unit caches latencies and GRAPE pulses by a structural
signature of each instruction, so repeated structures inside one circuit
are optimized once.  This module lifts that cache out of the unit so it can
outlive a single :class:`~repro.control.unit.OptimalControlUnit` — shared
across circuits, across batch workers, and (with the disk backend) across
processes and runs.

Three layers:

* :class:`PulseCache` — the in-memory store.  Thread-safe; keys carry a
  *configuration fingerprint* (device + compiler + GRAPE settings) so one
  store can safely serve units with different physics.
* :class:`DiskPulseCache` — a :class:`PulseCache` that loads from and
  saves to a ``<stem>.json`` + ``<stem>.npz`` file pair, so warm runs skip
  GRAPE and analytic-model evaluations entirely.
* :class:`CacheSession` — a worker-local view over a shared store: reads
  fall through to the store, writes buffer into a :class:`CacheDelta` that
  the batch engine merges back once the worker's job completes.

File format (version ``repro-pulse-cache-v1``)
----------------------------------------------
``<stem>.json`` holds every latency entry and the scalar pulse metadata::

    {
      "format": "repro-pulse-cache-v1",
      "latencies": [[fingerprint, backend, signature_repr, value], ...],
      "pulses": [{"fingerprint": ..., "signature": ...,
                  "fidelity": ..., "converged": ..., "iterations": ...,
                  "dt": ..., "control_names": [...], "slot": N}, ...]
    }

``<stem>.npz`` holds the arrays of pulse ``N`` under ``amp<N>`` (control
amplitudes), ``unitary<N>`` (achieved unitary) and ``loss<N>`` (loss
history).  Signatures are serialized with :func:`repr` and parsed back
with :func:`ast.literal_eval`; they are pure literals (strings, numbers,
tuples), so the round trip is exact.

Each file is replaced atomically, but the pair cannot be: both files
carry a content-derived ``save_id``, and :meth:`DiskPulseCache.load`
refuses to bind pulse metadata to arrays from a different save (a crash
between the two replaces, or a concurrent writer).  Mismatched or
missing arrays degrade gracefully — the pulse entries are skipped (a
cache miss recomputes them), latencies still load.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import json
import os
import threading

import numpy as np

from repro.config import CompilerConfig, DeviceConfig
from repro.control.grape import GrapeResult
from repro.control.pulse import Pulse
from repro.errors import ControlError

CACHE_FORMAT = "repro-pulse-cache-v1"

#: A latency entry key: (fingerprint, backend tag, structural signature).
LatencyKey = tuple
#: A pulse entry key: (fingerprint, structural signature).
PulseKey = tuple


def config_fingerprint(
    device: DeviceConfig,
    compiler: CompilerConfig,
    grape_qubit_limit: int,
    grape_dt: float,
    seed: int,
    target=None,
    grape_kernel: str = "vectorized",
    grape_warm_start: bool = True,
    grape_plateau_iterations: int | None = 60,
) -> str:
    """Digest of everything that changes cached latencies or pulses.

    Two units agree on every cache entry iff their fingerprints match, so
    entries from incompatible configurations can coexist in one store
    without ever being confused.

    Args:
        device: Homogeneous baseline physics.
        target: Optional full :class:`~repro.device.device.Device`.  Its
            :meth:`~repro.device.device.Device.coupling_signature` —
            topology wiring plus the per-edge coupling overrides — is
            folded in whenever the device carries such overrides, so entries
            computed for heterogeneously-priced devices can never
            collide with another device's.  Any other target hashes
            identically to a bare ``DeviceConfig``: latencies and pulses
            then depend only on instruction structure and the baseline
            physics (t1/t2 overrides feed the decoherence model, never
            the cache), so sharing entries across topologies is free
            warm-cache coverage, not a collision.
    """
    compiler_payload = dataclasses.asdict(compiler)
    # The aggregation-loop round cap shapes which merges execute, never
    # the latency or pulse of a given instruction — hashing it would
    # cold-start the cache on every ablation of the cap.
    compiler_payload.pop("max_aggregation_rounds", None)
    payload = {
        "device": dataclasses.asdict(device),
        "compiler": compiler_payload,
        "grape_qubit_limit": int(grape_qubit_limit),
        "grape_dt": float(grape_dt),
        "seed": int(seed),
    }
    if target is not None and target.has_heterogeneous_couplings:
        payload["target"] = repr(target.coupling_signature())
    # Algorithm variants fold in only when they differ from the default
    # fast path: the default fingerprint is stable across releases, while
    # pulses from the legacy kernel / cold-restart search (whose Adam
    # trajectories differ) can never collide with fast-path entries.
    if grape_kernel != "vectorized":
        payload["grape_kernel"] = grape_kernel
    if not grape_warm_start:
        payload["grape_warm_start"] = False
    if grape_plateau_iterations != 60:
        payload["grape_plateau_iterations"] = grape_plateau_iterations
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


@dataclasses.dataclass
class CacheDelta:
    """Entries a worker added on top of a shared store."""

    latencies: dict[LatencyKey, float] = dataclasses.field(default_factory=dict)
    pulses: dict[PulseKey, GrapeResult] = dataclasses.field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.latencies) + len(self.pulses)


class PulseCache:
    """Thread-safe in-memory latency/pulse store.

    The same store may back many optimal-control units at once (the batch
    engine's workers); all mutation happens under one lock.
    """

    def __init__(self) -> None:
        self._latencies: dict[LatencyKey, float] = {}
        self._pulses: dict[PulseKey, GrapeResult] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- pickling: locks cannot cross process boundaries -----------------

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- lookups ---------------------------------------------------------

    def get_latency(self, key: LatencyKey) -> float | None:
        with self._lock:
            value = self._latencies.get(key)
            if value is None:
                self.misses += 1
            else:
                self.hits += 1
            return value

    def put_latency(self, key: LatencyKey, value: float) -> None:
        with self._lock:
            self._latencies[key] = float(value)
            self.stores += 1

    def get_pulse(self, key: PulseKey) -> GrapeResult | None:
        with self._lock:
            result = self._pulses.get(key)
            if result is None:
                self.misses += 1
            else:
                self.hits += 1
            return result

    def put_pulse(self, key: PulseKey, result: GrapeResult) -> None:
        with self._lock:
            self._pulses[key] = result
            self.stores += 1

    # -- bulk operations -------------------------------------------------

    def merge_delta(self, delta: CacheDelta) -> int:
        """Fold a worker's new entries in; returns how many were new."""
        added = 0
        with self._lock:
            for key, value in delta.latencies.items():
                if key not in self._latencies:
                    added += 1
                self._latencies[key] = value
            for key, result in delta.pulses.items():
                if key not in self._pulses:
                    added += 1
                self._pulses[key] = result
        return added

    def snapshot_delta(self) -> CacheDelta:
        """The whole store as one :class:`CacheDelta` (copied under lock).

        This is how a warm store travels: serialize the snapshot
        (:func:`repro.ir.serialize.cache_delta_to_dict`), ship it across
        the process boundary, and ``merge_delta`` it into the far store —
        the batch engine seeds each worker process this way so warm
        caches skip optimal-control work in process mode too.
        """
        with self._lock:
            return CacheDelta(
                latencies=dict(self._latencies), pulses=dict(self._pulses)
            )

    @property
    def latency_count(self) -> int:
        return len(self._latencies)

    @property
    def pulse_count(self) -> int:
        return len(self._pulses)

    def stats(self) -> dict[str, int]:
        """Store-level counters (per-unit counters live on the OCU)."""
        return {
            "latency_entries": self.latency_count,
            "pulse_entries": self.pulse_count,
            "store_hits": self.hits,
            "store_misses": self.misses,
            "store_writes": self.stores,
        }


class CacheSession:
    """Worker-local cache view: read-through, buffered writes.

    Exposes the same interface as :class:`PulseCache`, so an
    :class:`~repro.control.unit.OptimalControlUnit` can be constructed
    directly on top of it.  All writes land in :attr:`delta`; the batch
    engine merges the delta into the shared store when the job finishes,
    which keeps workers from contending on the store's lock for every
    query while still letting later jobs reuse earlier jobs' work.
    """

    def __init__(self, store: PulseCache) -> None:
        self.store = store
        self.delta = CacheDelta()

    def get_latency(self, key: LatencyKey) -> float | None:
        value = self.delta.latencies.get(key)
        if value is not None:
            return value
        return self.store.get_latency(key)

    def put_latency(self, key: LatencyKey, value: float) -> None:
        self.delta.latencies[key] = float(value)

    def get_pulse(self, key: PulseKey) -> GrapeResult | None:
        result = self.delta.pulses.get(key)
        if result is not None:
            return result
        return self.store.get_pulse(key)

    def put_pulse(self, key: PulseKey, result: GrapeResult) -> None:
        self.delta.pulses[key] = result

    @property
    def latency_count(self) -> int:
        return self.store.latency_count + len(self.delta.latencies)

    @property
    def pulse_count(self) -> int:
        return self.store.pulse_count + len(self.delta.pulses)


class DiskPulseCache(PulseCache):
    """A :class:`PulseCache` persisted as ``<stem>.json`` + ``<stem>.npz``.

    Args:
        path: File stem; ``.json``/``.npz`` suffixes are appended (a
            ``.json`` suffix on the stem itself is stripped first, so both
            spellings address the same pair).
        autoload: Load existing files immediately (default).
    """

    def __init__(self, path: str | os.PathLike, autoload: bool = True) -> None:
        super().__init__()
        stem = os.fspath(path)
        if stem.endswith(".json") or stem.endswith(".npz"):
            stem = stem.rsplit(".", 1)[0]
        self.stem = stem
        self.loaded_entries = 0
        self.pulse_entries_skipped = 0
        if autoload:
            self.load()

    @property
    def json_path(self) -> str:
        return self.stem + ".json"

    @property
    def npz_path(self) -> str:
        return self.stem + ".npz"

    def load(self) -> int:
        """Merge any on-disk entries into memory; returns entries read.

        Pulse records are only restored when the ``.npz`` arrays carry
        the same ``save_id`` as the ``.json`` manifest; a torn pair
        (crash between the two file replaces) loses the pulses — they
        are recomputed on miss — never mispairs them.
        """
        if not os.path.exists(self.json_path):
            return 0
        with open(self.json_path, encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("format") != CACHE_FORMAT:
            raise ControlError(
                f"{self.json_path}: unknown cache format "
                f"{payload.get('format')!r} (expected {CACHE_FORMAT!r})"
            )
        arrays = {}
        if os.path.exists(self.npz_path):
            with np.load(self.npz_path) as archive:
                arrays = {name: archive[name] for name in archive.files}
        arrays_save_id = (
            arrays["save_id"].item() if "save_id" in arrays else None
        )
        pulses_usable = (
            payload.get("save_id") is not None
            and payload.get("save_id") == arrays_save_id
        )
        self.pulse_entries_skipped = (
            0 if pulses_usable else len(payload["pulses"])
        )
        read = 0
        with self._lock:
            for fingerprint, backend, signature, value in payload["latencies"]:
                key = (fingerprint, backend, ast.literal_eval(signature))
                self._latencies.setdefault(key, float(value))
                read += 1
            for record in payload["pulses"] if pulses_usable else ():
                key = (
                    record["fingerprint"],
                    ast.literal_eval(record["signature"]),
                )
                slot = record["slot"]
                pulse = Pulse(
                    control_names=list(record["control_names"]),
                    amplitudes=arrays[f"amp{slot}"],
                    dt=float(record["dt"]),
                )
                self._pulses.setdefault(
                    key,
                    GrapeResult(
                        fidelity=float(record["fidelity"]),
                        converged=bool(record["converged"]),
                        iterations=int(record["iterations"]),
                        pulse=pulse,
                        final_unitary=arrays[f"unitary{slot}"],
                        loss_history=[
                            float(x) for x in arrays[f"loss{slot}"]
                        ],
                    ),
                )
                read += 1
        self.loaded_entries = read
        return read

    def save(self) -> int:
        """Write the whole store to disk; returns entries written.

        Each file is replaced atomically; the arrays land before the
        manifest, and both carry a content-derived ``save_id`` that
        :meth:`load` checks before pairing them.
        """
        with self._lock:
            latencies = [
                [fingerprint, backend, repr(signature), value]
                for (fingerprint, backend, signature), value
                in self._latencies.items()
            ]
            pulses = []
            arrays: dict[str, np.ndarray] = {}
            for slot, ((fingerprint, signature), result) in enumerate(
                self._pulses.items()
            ):
                pulses.append(
                    {
                        "fingerprint": fingerprint,
                        "signature": repr(signature),
                        "fidelity": result.fidelity,
                        "converged": bool(result.converged),
                        "iterations": result.iterations,
                        "dt": result.pulse.dt,
                        "control_names": list(result.pulse.control_names),
                        "slot": slot,
                    }
                )
                arrays[f"amp{slot}"] = result.pulse.amplitudes
                arrays[f"unitary{slot}"] = result.final_unitary
                arrays[f"loss{slot}"] = np.asarray(
                    result.loss_history, dtype=float
                )
        # The digest covers the keys *in slot order*: two saves of the
        # same pulse set inserted in different orders map slots to
        # different arrays, and must not share a save_id.
        save_id = hashlib.sha256(
            "\n".join(
                record["fingerprint"] + record["signature"]
                for record in pulses
            ).encode()
        ).hexdigest()[:16]
        payload = {
            "format": CACHE_FORMAT,
            "save_id": save_id,
            "latencies": latencies,
            "pulses": pulses,
        }
        directory = os.path.dirname(self.stem)
        if directory:
            os.makedirs(directory, exist_ok=True)
        if arrays:
            arrays["save_id"] = np.array(save_id)
            tmp_npz = self.npz_path + ".tmp.npz"
            np.savez_compressed(tmp_npz, **arrays)
            os.replace(tmp_npz, self.npz_path)
        tmp_json = self.json_path + ".tmp"
        with open(tmp_json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp_json, self.json_path)
        if not arrays and os.path.exists(self.npz_path):
            os.remove(self.npz_path)
        return len(latencies) + len(pulses)
