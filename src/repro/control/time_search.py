"""Minimal-pulse-time search: the latency GRAPE actually achieves.

Starting from an analytic estimate, the search grows the duration
geometrically until GRAPE converges, then bisects between the last
failure and the first success.  The returned duration is the shortest
pulse found that meets the fidelity threshold.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.control.grape import GrapeOptimizer, GrapeResult
from repro.control.hamiltonian import ControlHamiltonian
from repro.errors import ControlError


@dataclasses.dataclass
class TimeSearchResult:
    """Minimal duration found plus the pulse that realizes it."""

    duration: float
    grape: GrapeResult
    attempts: int


def minimal_pulse_time(
    target: np.ndarray,
    hamiltonian: ControlHamiltonian,
    estimate: float,
    fidelity_threshold: float = 0.999,
    dt: float = 0.5,
    max_iterations: int = 400,
    growth: float = 1.3,
    max_attempts: int = 12,
    bisection_rounds: int = 3,
    seed: int = 20190413,
) -> TimeSearchResult:
    """Find (approximately) the shortest pulse realizing ``target``.

    Args:
        target: Unitary to synthesize.
        hamiltonian: Control fields available.
        estimate: Starting duration guess in ns (e.g. from the analytic
            model); the search explores down to ~60% of it and upward.
        fidelity_threshold: Success criterion for a duration.
        growth: Geometric growth factor while searching upward.

    Returns:
        A :class:`TimeSearchResult`; raises ControlError if no duration
        within the attempt budget converges.
    """
    if estimate <= 0:
        raise ControlError("estimate must be positive")
    optimizer = GrapeOptimizer(
        hamiltonian, dt=dt, max_iterations=max_iterations, seed=seed
    )
    attempts = 0
    duration = max(2 * dt, 0.6 * estimate)
    last_failure = 0.0
    success: tuple[float, GrapeResult] | None = None
    while attempts < max_attempts:
        attempts += 1
        result = optimizer.optimize(
            target, duration, fidelity_threshold=fidelity_threshold
        )
        if result.converged:
            success = (duration, result)
            break
        last_failure = duration
        duration *= growth
    if success is None:
        raise ControlError(
            f"GRAPE did not converge within {max_attempts} attempts "
            f"(last duration {last_failure:.1f} ns)"
        )
    best_duration, best_result = success
    low, high = last_failure, best_duration
    for _ in range(bisection_rounds):
        if high - low <= 2 * dt:
            break
        middle = (low + high) / 2.0
        attempts += 1
        result = optimizer.optimize(
            target, middle, fidelity_threshold=fidelity_threshold
        )
        if result.converged:
            high, best_duration, best_result = middle, middle, result
        else:
            low = middle
    return TimeSearchResult(
        duration=best_duration, grape=best_result, attempts=attempts
    )
