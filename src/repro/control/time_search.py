"""Minimal-pulse-time search: the latency GRAPE actually achieves.

Starting from an analytic estimate, the search grows the duration
geometrically until GRAPE converges, then bisects between the last
failure and the first success.  The returned duration is the shortest
pulse found that meets the fidelity threshold.

Two optimizations keep the search cheap (the cold-batch hot path
``benchmarks/bench_batch.py`` measures):

* **Warm starts** — each duration attempt after the first seeds GRAPE
  with the previous attempt's best amplitudes, resampled onto the new
  step grid (through ``GrapeOptimizer.optimize(initial_amplitudes=)``),
  instead of a fresh random pulse.  A near-miss at one duration is an
  excellent initial guess at the next, so warm attempts converge in a
  fraction of the iterations.
* **Plateau termination** — attempts run with a plateau budget, so a
  duration below the quantum speed limit (whose loss stalls above the
  threshold) fails after ``plateau_iterations`` stagnant iterations
  instead of burning the full ``max_iterations`` budget.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.control.grape import GrapeOptimizer, GrapeResult
from repro.control.hamiltonian import ControlHamiltonian
from repro.errors import ControlError


@dataclasses.dataclass
class TimeSearchResult:
    """Minimal duration found plus the pulse that realizes it."""

    duration: float
    grape: GrapeResult
    attempts: int
    evaluations: int = 0
    """Total GRAPE model (loss + gradient) evaluations across every
    attempt of the search — the cost metric ``BENCH_batch.json`` and the
    OCU's ``grape_evals`` counter track."""


def _resample_amplitudes(
    amplitudes: np.ndarray, steps: int, limits: np.ndarray
) -> np.ndarray:
    """Stretch/compress a pulse onto a new step grid.

    Each control column is linearly interpolated at the new step
    centers over normalized time, so the pulse's *shape* carries over
    while its duration changes; values are re-clipped to the hardware
    limits (interpolation stays within them, but be explicit).
    """
    old_steps = amplitudes.shape[0]
    if old_steps == steps:
        return np.clip(amplitudes, -limits, limits)
    old_centers = (np.arange(old_steps) + 0.5) / old_steps
    new_centers = (np.arange(steps) + 0.5) / steps
    resampled = np.empty((steps, amplitudes.shape[1]))
    for control in range(amplitudes.shape[1]):
        resampled[:, control] = np.interp(
            new_centers, old_centers, amplitudes[:, control]
        )
    return np.clip(resampled, -limits, limits)


def minimal_pulse_time(
    target: np.ndarray,
    hamiltonian: ControlHamiltonian,
    estimate: float,
    fidelity_threshold: float = 0.999,
    dt: float = 0.5,
    max_iterations: int = 400,
    growth: float = 1.3,
    max_attempts: int = 12,
    bisection_rounds: int = 3,
    seed: int = 20190413,
    warm_start: bool = True,
    plateau_iterations: int | None = 60,
    plateau_tolerance: float = 1e-6,
    kernel: str = "vectorized",
) -> TimeSearchResult:
    """Find (approximately) the shortest pulse realizing ``target``.

    Args:
        target: Unitary to synthesize.
        hamiltonian: Control fields available.
        estimate: Starting duration guess in ns (e.g. from the analytic
            model); the search explores down to ~60% of it and upward.
        fidelity_threshold: Success criterion for a duration.
        growth: Geometric growth factor while searching upward.
        warm_start: Seed each attempt after the first with the previous
            attempt's best amplitudes resampled onto the new step grid
            (False restores the legacy cold-restart behavior).
        plateau_iterations: Per-attempt plateau budget — an attempt
            stops after this many iterations without the loss improving
            by ``plateau_tolerance`` (None restores the legacy
            full-budget behavior).
        kernel: Gradient kernel forwarded to :class:`GrapeOptimizer`.

    Returns:
        A :class:`TimeSearchResult`; raises ControlError if no duration
        within the attempt budget converges.
    """
    if estimate <= 0:
        raise ControlError("estimate must be positive")
    optimizer = GrapeOptimizer(
        hamiltonian,
        dt=dt,
        max_iterations=max_iterations,
        seed=seed,
        kernel=kernel,
    )
    limits = hamiltonian.limits()

    def steps_for(duration: float) -> int:
        return max(2, int(round(duration / dt)))

    previous: GrapeResult | None = None

    def attempt(duration: float) -> GrapeResult:
        initial = None
        if warm_start and previous is not None:
            initial = _resample_amplitudes(
                previous.pulse.amplitudes, steps_for(duration), limits
            )
        return optimizer.optimize(
            target,
            duration,
            fidelity_threshold=fidelity_threshold,
            initial_amplitudes=initial,
            plateau_iterations=plateau_iterations,
            plateau_tolerance=plateau_tolerance,
        )

    attempts = 0
    evaluations = 0
    duration = max(2 * dt, 0.6 * estimate)
    last_failure = 0.0
    success: tuple[float, GrapeResult] | None = None
    while attempts < max_attempts:
        attempts += 1
        result = attempt(duration)
        evaluations += result.evaluations
        previous = result
        if result.converged:
            success = (duration, result)
            break
        last_failure = duration
        duration *= growth
    if success is None:
        raise ControlError(
            f"GRAPE did not converge within {max_attempts} attempts "
            f"(last duration {last_failure:.1f} ns)"
        )
    best_duration, best_result = success
    # The bisection window is floored at 2*dt: when the very first
    # attempt converges, last_failure is still 0.0, and bisecting
    # against zero probes durations far below any physical pulse (the
    # optimizer would clamp them to two steps of shrunken dt anyway) —
    # each a guaranteed failure that used to burn a full GRAPE budget.
    low, high = max(last_failure, 2 * dt), best_duration
    previous = best_result
    for _ in range(bisection_rounds):
        if high - low <= 2 * dt:
            break
        middle = (low + high) / 2.0
        attempts += 1
        result = attempt(middle)
        evaluations += result.evaluations
        previous = result
        if result.converged:
            high, best_duration, best_result = middle, middle, result
        else:
            low = middle
    return TimeSearchResult(
        duration=best_duration,
        grape=best_result,
        attempts=attempts,
        evaluations=evaluations,
    )
