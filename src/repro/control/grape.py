"""GRAPE: GRadient Ascent Pulse Engineering (paper Sec. 2.5, 3.5).

Pure-NumPy reimplementation of the paper's optimal-control unit (which
used a GPU/TensorFlow implementation; only wall-clock differs).  The
optimizer maximizes the unitary trace fidelity
``F = |Tr(V^dag U(T))|^2 / d^2`` over piecewise-constant control
amplitudes, using *exact* gradients of each step propagator via the
Daleckii–Krein divided-difference formula, Adam updates, and projection
onto the hardware amplitude limits.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.control.hamiltonian import ControlHamiltonian
from repro.control.pulse import Pulse
from repro.errors import ControlError
from repro.linalg.fidelity import unitary_trace_fidelity


@dataclasses.dataclass
class GrapeResult:
    """Outcome of one GRAPE optimization."""

    fidelity: float
    converged: bool
    iterations: int
    pulse: Pulse
    final_unitary: np.ndarray
    loss_history: list[float]

    @property
    def duration(self) -> float:
        return self.pulse.duration


class GrapeOptimizer:
    """Optimizes control pulses for a fixed Hamiltonian model.

    Args:
        hamiltonian: The instruction's control fields.
        dt: Time step of the piecewise-constant controls (ns).
        max_iterations: Gradient-descent iteration budget.
        learning_rate: Adam step size as a fraction of each field limit.
        seed: Seed for the random initial pulse.
    """

    def __init__(
        self,
        hamiltonian: ControlHamiltonian,
        dt: float = 0.5,
        max_iterations: int = 400,
        learning_rate: float = 0.08,
        seed: int = 20190413,
    ) -> None:
        if dt <= 0:
            raise ControlError("dt must be positive")
        if max_iterations < 1:
            raise ControlError("need at least one iteration")
        self.hamiltonian = hamiltonian
        self.dt = float(dt)
        self.max_iterations = int(max_iterations)
        self.learning_rate = float(learning_rate)
        self.seed = seed

    def optimize(
        self,
        target: np.ndarray,
        duration: float,
        fidelity_threshold: float = 0.999,
        initial_amplitudes: np.ndarray | None = None,
    ) -> GrapeResult:
        """Search for a pulse realizing ``target`` within ``duration`` ns."""
        target = np.asarray(target, dtype=complex)
        dim = self.hamiltonian.dim
        if target.shape != (dim, dim):
            raise ControlError(
                f"target shape {target.shape} does not match dimension {dim}"
            )
        steps = max(2, int(round(duration / self.dt)))
        dt = duration / steps
        limits = self.hamiltonian.limits()
        operators = np.stack(
            [term.operator for term in self.hamiltonian.terms]
        )
        num_controls = len(limits)

        rng = np.random.default_rng(self.seed)
        if initial_amplitudes is not None:
            amplitudes = np.array(initial_amplitudes, dtype=float)
            if amplitudes.shape != (steps, num_controls):
                raise ControlError("initial amplitudes have the wrong shape")
        else:
            amplitudes = 0.3 * limits * rng.standard_normal((steps, num_controls))
        amplitudes = np.clip(amplitudes, -limits, limits)

        # Adam state.
        first_moment = np.zeros_like(amplitudes)
        second_moment = np.zeros_like(amplitudes)
        beta1, beta2, epsilon = 0.9, 0.999, 1e-12
        step_sizes = self.learning_rate * limits

        loss_history: list[float] = []
        best_loss = np.inf
        best_amplitudes = amplitudes.copy()
        iterations_done = 0

        for iteration in range(1, self.max_iterations + 1):
            iterations_done = iteration
            loss, gradient = _loss_and_gradient(
                amplitudes, operators, target, dt
            )
            loss_history.append(loss)
            if loss < best_loss:
                best_loss = loss
                best_amplitudes = amplitudes.copy()
            if 1.0 - loss >= fidelity_threshold:
                break
            first_moment = beta1 * first_moment + (1 - beta1) * gradient
            second_moment = beta2 * second_moment + (1 - beta2) * gradient**2
            corrected_first = first_moment / (1 - beta1**iteration)
            corrected_second = second_moment / (1 - beta2**iteration)
            amplitudes = amplitudes - step_sizes * corrected_first / (
                np.sqrt(corrected_second) + epsilon
            )
            amplitudes = np.clip(amplitudes, -limits, limits)

        final_unitary = _propagate(best_amplitudes, operators, dt)
        fidelity = unitary_trace_fidelity(target, final_unitary)
        pulse = Pulse(
            control_names=self.hamiltonian.control_names(),
            amplitudes=best_amplitudes,
            dt=dt,
        )
        return GrapeResult(
            fidelity=fidelity,
            converged=fidelity >= fidelity_threshold,
            iterations=iterations_done,
            pulse=pulse,
            final_unitary=final_unitary,
            loss_history=loss_history,
        )


def _step_propagators(amplitudes, operators, dt):
    """Eigendecompose each step Hamiltonian and exponentiate."""
    hamiltonians = np.einsum("jk,kab->jab", amplitudes, operators)
    eigenvalues, eigenvectors = np.linalg.eigh(hamiltonians)
    phases = np.exp(-1j * eigenvalues * dt)
    propagators = np.einsum(
        "jap,jp,jbp->jab", eigenvectors, phases, eigenvectors.conj()
    )
    return propagators, eigenvalues, eigenvectors, phases


def _propagate(amplitudes, operators, dt):
    """Total unitary of a pulse."""
    propagators, *_ = _step_propagators(amplitudes, operators, dt)
    dim = operators.shape[1]
    total = np.eye(dim, dtype=complex)
    for j in range(amplitudes.shape[0]):
        total = propagators[j] @ total
    return total


def _loss_and_gradient(amplitudes, operators, target, dt):
    """Loss ``1 - |tr(V^dag U)|^2/d^2`` and its exact amplitude gradient."""
    steps, num_controls = amplitudes.shape
    dim = operators.shape[1]
    propagators, eigenvalues, eigenvectors, phases = _step_propagators(
        amplitudes, operators, dt
    )

    forward = np.empty((steps + 1, dim, dim), dtype=complex)
    forward[0] = np.eye(dim)
    for j in range(steps):
        forward[j + 1] = propagators[j] @ forward[j]
    backward = np.empty((steps + 1, dim, dim), dtype=complex)
    backward[steps] = np.eye(dim)
    for j in range(steps - 1, -1, -1):
        backward[j] = backward[j + 1] @ propagators[j]

    total = forward[steps]
    overlap = np.trace(target.conj().T @ total)
    loss = 1.0 - (abs(overlap) ** 2) / dim**2

    gradient = np.empty((steps, num_controls))
    v_dag = target.conj().T
    for j in range(steps):
        w = eigenvectors[j]
        lam = eigenvalues[j]
        phase = phases[j]
        # Divided differences Phi_pq of f(x) = exp(-i x dt).
        delta = lam[:, None] - lam[None, :]
        numerator = phase[:, None] - phase[None, :]
        with np.errstate(divide="ignore", invalid="ignore"):
            phi = np.where(
                np.abs(delta) > 1e-12, numerator / delta, -1j * dt * phase[:, None]
            )
        # A_j = F_{j-1} V^dag G_j  (G_j = backward[j+1]).
        a_matrix = forward[j] @ v_dag @ backward[j + 1]
        a_tilde = w.conj().T @ a_matrix @ w
        weight = a_tilde.T * phi
        for k in range(num_controls):
            m_k = w.conj().T @ operators[k] @ w
            dz = np.sum(weight * m_k)
            gradient[j, k] = (
                -2.0 * np.real(np.conj(overlap) * dz) / dim**2
            )
    return loss, gradient
