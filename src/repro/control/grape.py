"""GRAPE: GRadient Ascent Pulse Engineering (paper Sec. 2.5, 3.5).

Pure-NumPy reimplementation of the paper's optimal-control unit (which
used a GPU/TensorFlow implementation; only wall-clock differs).  The
optimizer maximizes the unitary trace fidelity
``F = |Tr(V^dag U(T))|^2 / d^2`` over piecewise-constant control
amplitudes, using *exact* gradients of each step propagator via the
Daleckii–Krein divided-difference formula, Adam updates, and projection
onto the hardware amplitude limits.

Two gradient kernels compute the identical quantity:

* ``"vectorized"`` (default) — one batched einsum contraction per
  iteration over *all* timesteps and controls at once: the rotated
  weight matrices ``W_j (A~_j^T * Phi_j)^T W_j^dag`` are formed for
  every step in one shot and contracted against the control operators
  in a single ``einsum``, so the per-iteration cost is a handful of
  BLAS calls instead of ``steps * controls`` interpreter-level matmuls.
* ``"reference"`` — the original step-by-step loop, retained verbatim
  as the ground truth the vectorized kernel is parity-tested against
  (``tests/control/test_grape.py``).

Both kernels evaluate the same floating-point contractions in slightly
different association orders, so their gradients agree to ~1e-12 but
long Adam trajectories can still diverge; the kernel choice is part of
the pulse-cache fingerprint whenever it is not the default.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.control.hamiltonian import ControlHamiltonian
from repro.control.pulse import Pulse
from repro.errors import ControlError
from repro.linalg.fidelity import unitary_trace_fidelity

#: Gradient kernel implementations selectable on :class:`GrapeOptimizer`.
GRAPE_KERNELS = ("vectorized", "reference")


@dataclasses.dataclass
class GrapeResult:
    """Outcome of one GRAPE optimization."""

    fidelity: float
    converged: bool
    iterations: int
    pulse: Pulse
    final_unitary: np.ndarray
    loss_history: list[float]

    @property
    def duration(self) -> float:
        return self.pulse.duration

    @property
    def evaluations(self) -> int:
        """Model (loss + gradient) evaluations this run performed.

        One per iteration — the unit the batch engine's
        ``grape_evals`` counter and ``BENCH_batch.json`` report.
        """
        return len(self.loss_history)


class GrapeOptimizer:
    """Optimizes control pulses for a fixed Hamiltonian model.

    Args:
        hamiltonian: The instruction's control fields.
        dt: Time step of the piecewise-constant controls (ns).
        max_iterations: Gradient-descent iteration budget.
        learning_rate: Adam step size as a fraction of each field limit.
        seed: Seed for the random initial pulse.
        kernel: Gradient kernel, one of :data:`GRAPE_KERNELS`.  The
            default vectorized kernel is the fast path; ``"reference"``
            is the retained loop implementation (parity ground truth,
            and the legacy side of ``benchmarks/bench_batch.py``).
    """

    def __init__(
        self,
        hamiltonian: ControlHamiltonian,
        dt: float = 0.5,
        max_iterations: int = 400,
        learning_rate: float = 0.08,
        seed: int = 20190413,
        kernel: str = "vectorized",
    ) -> None:
        if dt <= 0:
            raise ControlError("dt must be positive")
        if max_iterations < 1:
            raise ControlError("need at least one iteration")
        if kernel not in GRAPE_KERNELS:
            raise ControlError(
                f"unknown gradient kernel {kernel!r}; use {GRAPE_KERNELS}"
            )
        self.hamiltonian = hamiltonian
        self.dt = float(dt)
        self.max_iterations = int(max_iterations)
        self.learning_rate = float(learning_rate)
        self.seed = seed
        self.kernel = kernel

    def optimize(
        self,
        target: np.ndarray,
        duration: float,
        fidelity_threshold: float = 0.999,
        initial_amplitudes: np.ndarray | None = None,
        plateau_iterations: int | None = None,
        plateau_tolerance: float = 1e-6,
    ) -> GrapeResult:
        """Search for a pulse realizing ``target`` within ``duration`` ns.

        Args:
            initial_amplitudes: Warm start — a ``(steps, controls)``
                array used instead of the seeded random initial pulse
                (the minimal-time search resamples the previous
                attempt's best pulse through this).
            plateau_iterations: When set, stop early after this many
                consecutive iterations without the best loss improving
                by more than ``plateau_tolerance`` — a duration below
                the quantum speed limit then fails in tens of
                iterations instead of burning the whole budget.
            plateau_tolerance: Minimum loss improvement that counts as
                progress for the plateau check.
        """
        target = np.asarray(target, dtype=complex)
        dim = self.hamiltonian.dim
        if target.shape != (dim, dim):
            raise ControlError(
                f"target shape {target.shape} does not match dimension {dim}"
            )
        steps = max(2, int(round(duration / self.dt)))
        dt = duration / steps
        limits = self.hamiltonian.limits()
        operators = np.stack(
            [term.operator for term in self.hamiltonian.terms]
        )
        num_controls = len(limits)

        rng = np.random.default_rng(self.seed)
        if initial_amplitudes is not None:
            amplitudes = np.array(initial_amplitudes, dtype=float)
            if amplitudes.shape != (steps, num_controls):
                raise ControlError("initial amplitudes have the wrong shape")
        else:
            amplitudes = 0.3 * limits * rng.standard_normal((steps, num_controls))
        amplitudes = np.clip(amplitudes, -limits, limits)

        # Adam state.
        first_moment = np.zeros_like(amplitudes)
        second_moment = np.zeros_like(amplitudes)
        beta1, beta2, epsilon = 0.9, 0.999, 1e-12
        step_sizes = self.learning_rate * limits

        loss_history: list[float] = []
        best_loss = np.inf
        best_amplitudes = amplitudes.copy()
        best_unitary = np.eye(dim, dtype=complex)
        iterations_done = 0
        since_improvement = 0

        for iteration in range(1, self.max_iterations + 1):
            iterations_done = iteration
            loss, gradient, total = _evaluate(
                amplitudes, operators, target, dt, self.kernel
            )
            loss_history.append(loss)
            if loss < best_loss - plateau_tolerance:
                since_improvement = 0
            else:
                since_improvement += 1
            if loss < best_loss:
                best_loss = loss
                best_amplitudes = amplitudes.copy()
                # The evaluation already propagated these amplitudes;
                # keeping the unitary here makes the final
                # re-propagation of best_amplitudes unnecessary.
                best_unitary = total
            if 1.0 - loss >= fidelity_threshold:
                break
            if (
                plateau_iterations is not None
                and since_improvement >= plateau_iterations
            ):
                break
            first_moment = beta1 * first_moment + (1 - beta1) * gradient
            second_moment = beta2 * second_moment + (1 - beta2) * gradient**2
            corrected_first = first_moment / (1 - beta1**iteration)
            corrected_second = second_moment / (1 - beta2**iteration)
            amplitudes = amplitudes - step_sizes * corrected_first / (
                np.sqrt(corrected_second) + epsilon
            )
            amplitudes = np.clip(amplitudes, -limits, limits)

        fidelity = unitary_trace_fidelity(target, best_unitary)
        pulse = Pulse(
            control_names=self.hamiltonian.control_names(),
            amplitudes=best_amplitudes,
            dt=dt,
        )
        return GrapeResult(
            fidelity=fidelity,
            converged=fidelity >= fidelity_threshold,
            iterations=iterations_done,
            pulse=pulse,
            final_unitary=best_unitary,
            loss_history=loss_history,
        )


def _step_propagators(amplitudes, operators, dt):
    """Eigendecompose each step Hamiltonian and exponentiate."""
    hamiltonians = np.einsum("jk,kab->jab", amplitudes, operators)
    eigenvalues, eigenvectors = np.linalg.eigh(hamiltonians)
    phases = np.exp(-1j * eigenvalues * dt)
    propagators = np.einsum(
        "jap,jp,jbp->jab", eigenvectors, phases, eigenvectors.conj()
    )
    return propagators, eigenvalues, eigenvectors, phases


def _reduce_product(propagators):
    """Time-ordered product ``P[n-1] @ ... @ P[0]`` of a propagator stack.

    Pairwise tree reduction: each round multiplies adjacent pairs with
    one batched ``matmul`` (later factor on the left), halving the stack,
    so the Python-level work is ``O(log n)`` batched calls instead of an
    ``n``-iteration accumulation loop.  Associativity keeps the time
    ordering exact; only floating-point rounding differs from the
    sequential product.
    """
    stack = propagators
    while stack.shape[0] > 1:
        n = stack.shape[0]
        paired = np.matmul(stack[1 : n - n % 2 : 2], stack[0 : n - n % 2 : 2])
        if n % 2:
            stack = np.concatenate([paired, stack[-1:]], axis=0)
        else:
            stack = paired
    return stack[0]


def _propagate(amplitudes, operators, dt):
    """Total unitary of a pulse."""
    propagators, *_ = _step_propagators(amplitudes, operators, dt)
    return _reduce_product(propagators)


def _forward_backward(propagators):
    """All cumulative products: ``forward[j] = P[j-1]···P[0]`` and
    ``backward[j] = P[n-1]···P[j]`` (both with identity sentinels)."""
    steps, dim, _ = propagators.shape
    forward = np.empty((steps + 1, dim, dim), dtype=complex)
    forward[0] = np.eye(dim)
    for j in range(steps):
        forward[j + 1] = propagators[j] @ forward[j]
    backward = np.empty((steps + 1, dim, dim), dtype=complex)
    backward[steps] = np.eye(dim)
    for j in range(steps - 1, -1, -1):
        backward[j] = backward[j + 1] @ propagators[j]
    return forward, backward


def _evaluate(amplitudes, operators, target, dt, kernel="vectorized"):
    """Loss, gradient and total unitary under the selected kernel."""
    if kernel == "reference":
        return _evaluate_reference(amplitudes, operators, target, dt)
    if kernel == "vectorized":
        return _evaluate_vectorized(amplitudes, operators, target, dt)
    raise ControlError(
        f"unknown gradient kernel {kernel!r}; use {GRAPE_KERNELS}"
    )


def _loss_and_gradient(amplitudes, operators, target, dt, kernel="vectorized"):
    """Loss ``1 - |tr(V^dag U)|^2/d^2`` and its exact amplitude gradient."""
    loss, gradient, _ = _evaluate(amplitudes, operators, target, dt, kernel)
    return loss, gradient


def _divided_differences(eigenvalues, phases, dt):
    """Daleckii–Krein first divided differences of ``exp(-i x dt)``,
    batched over the leading (timestep) axis."""
    delta = eigenvalues[..., :, None] - eigenvalues[..., None, :]
    numerator = phases[..., :, None] - phases[..., None, :]
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(
            np.abs(delta) > 1e-12,
            numerator / delta,
            -1j * dt * phases[..., :, None],
        )


def _evaluate_vectorized(amplitudes, operators, target, dt):
    """Batched gradient: every timestep and control in one contraction.

    Identical mathematics to :func:`_evaluate_reference`; the per-step
    quantities (divided differences, rotated overlap matrices) are
    formed for the whole pulse at once and the ``(steps, controls)``
    gradient falls out of a single einsum, via
    ``dZ[j,k] = Tr(W_j weight_j^T W_j^dag H_k)`` — the cyclic rewrite of
    the reference kernel's ``sum(weight_j * (W_j^dag H_k W_j))`` that
    avoids materializing the rotated control operators per step.
    """
    dim = operators.shape[1]
    propagators, eigenvalues, eigenvectors, phases = _step_propagators(
        amplitudes, operators, dt
    )
    forward, backward = _forward_backward(propagators)
    total = forward[-1]
    overlap = np.trace(target.conj().T @ total)
    loss = 1.0 - (abs(overlap) ** 2) / dim**2

    phi = _divided_differences(eigenvalues, phases, dt)
    v_dag = target.conj().T
    # A_j = F_{j-1} V^dag G_j for every step at once (G_j = backward[j+1]).
    a_matrix = np.matmul(np.matmul(forward[:-1], v_dag), backward[1:])
    w = eigenvectors
    w_dag = w.conj().transpose(0, 2, 1)
    a_tilde = np.matmul(w_dag, np.matmul(a_matrix, w))
    weight = a_tilde.transpose(0, 2, 1) * phi
    rotated = np.matmul(w, np.matmul(weight.transpose(0, 2, 1), w_dag))
    dz = np.einsum("jpq,kqp->jk", rotated, operators)
    gradient = -2.0 * np.real(np.conj(overlap) * dz) / dim**2
    return loss, gradient, total


def _evaluate_reference(amplitudes, operators, target, dt):
    """The original per-step loop kernel, kept as parity ground truth."""
    steps, num_controls = amplitudes.shape
    dim = operators.shape[1]
    propagators, eigenvalues, eigenvectors, phases = _step_propagators(
        amplitudes, operators, dt
    )
    forward, backward = _forward_backward(propagators)
    total = forward[steps]
    overlap = np.trace(target.conj().T @ total)
    loss = 1.0 - (abs(overlap) ** 2) / dim**2

    gradient = np.empty((steps, num_controls))
    v_dag = target.conj().T
    for j in range(steps):
        w = eigenvectors[j]
        lam = eigenvalues[j]
        phase = phases[j]
        # Divided differences Phi_pq of f(x) = exp(-i x dt).
        delta = lam[:, None] - lam[None, :]
        numerator = phase[:, None] - phase[None, :]
        with np.errstate(divide="ignore", invalid="ignore"):
            phi = np.where(
                np.abs(delta) > 1e-12, numerator / delta, -1j * dt * phase[:, None]
            )
        # A_j = F_{j-1} V^dag G_j  (G_j = backward[j+1]).
        a_matrix = forward[j] @ v_dag @ backward[j + 1]
        a_tilde = w.conj().T @ a_matrix @ w
        weight = a_tilde.T * phi
        for k in range(num_controls):
            m_k = w.conj().T @ operators[k] @ w
            dz = np.sum(weight * m_k)
            gradient[j, k] = (
                -2.0 * np.real(np.conj(overlap) * dz) / dim**2
            )
    return loss, gradient, total
