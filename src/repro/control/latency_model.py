"""Analytic pulse-latency model for the XY architecture.

The instruction aggregator must query latencies for thousands of candidate
instructions; running GRAPE for each (as the paper's backend does, at the
cost of hours of compilation) is replaced here by a calibrated analytic
model with the same structure as the GRAPE optima:

``T(instruction) = t_setup + max_q workload(q)``

* ``t_setup`` — fixed pulse overhead (ramp/bandwidth), calibrated against
  paper Table 1: 33.0 ns when any coupling field is used, 2.1 ns for
  drive-only pulses.  Aggregation amortizes this overhead: one setup per
  aggregated instruction instead of one per gate.
* ``workload(q)`` — per-qubit busy time.  Consecutive gates whose joint
  support stays within two qubits are *collapsed* into runs first (exactly
  the folding optimal control performs: CNOT-Rz-CNOT becomes one ZZ-class
  pulse).  A two-qubit run then costs its provably minimal XY interaction
  time :func:`~repro.linalg.kak.interaction_time` on both qubits; a
  single-qubit run costs its net rotation content over the drive rate.
  Drive fields on qubits engaged in a coupling pulse are co-scheduled with
  the interaction (GRAPE overlaps them), so collapsed two-qubit runs carry
  no separate local charge.

Cross-checks against the GRAPE backend live in
``tests/control/test_model_vs_grape.py``.
"""

from __future__ import annotations

import numpy as np

from repro.config import DeviceConfig, DEFAULT_DEVICE
from repro.errors import ControlError
from repro.gates.gate import Gate
from repro.linalg.embed import embed_operator
from repro.linalg.kak import interaction_time
from repro.linalg.su2 import rotation_content


class AnalyticLatencyModel:
    """Estimates minimal pulse latency of gate sequences.

    Args:
        device: Homogeneous field limits and setup times.
        target: Optional full :class:`~repro.device.device.Device`.  When
            it carries per-edge coupling-limit overrides, a two-qubit run
            on an overridden edge is priced at that edge's rate; pairs
            that are not device edges (latency queries on logical
            circuits, before placement) fall back to the homogeneous
            rate, as does a ``target`` of None.
    """

    def __init__(
        self, device: DeviceConfig = DEFAULT_DEVICE, target=None
    ) -> None:
        self.device = device
        self.target = target

    def _coupling_rate(self, support) -> float:
        if self.target is not None and len(support) == 2:
            return self.target.coupling_rate_of(support[0], support[1])
        return self.device.coupling_rate

    def gate_latency(self, gate: Gate) -> float:
        """Latency of a standalone gate pulse (ISA compilation cost)."""
        return self.sequence_latency([gate])

    def sequence_latency(self, gates) -> float:
        """Latency of one continuous pulse implementing ``gates`` in order.

        Gates act on absolute qubit indices; the instruction's width is
        the union of their supports.
        """
        gates = list(gates)
        if not gates:
            return 0.0
        for gate in gates:
            if gate.num_qubits > 2:
                raise ControlError(
                    f"latency model needs 1-/2-qubit gates, got {gate}"
                )
        runs = _collapse_runs(gates)
        workload: dict[int, float] = {}
        uses_coupling = False
        for run in runs:
            cost, is_coupling = self._run_cost(run)
            uses_coupling = uses_coupling or is_coupling
            for q in run.support:
                workload[q] = workload.get(q, 0.0) + cost
        setup = (
            self.device.setup_time_2q_ns
            if uses_coupling
            else self.device.setup_time_1q_ns
        )
        return setup + max(workload.values(), default=0.0)

    def _run_cost(self, run: _Run) -> tuple[float, bool]:
        if len(run.support) == 1:
            content = rotation_content(run.matrix)
            return content / self.device.drive_rate, False
        busy = interaction_time(run.matrix, self._coupling_rate(run.support))
        if busy < 1e-9:
            # Locally-equivalent-to-identity run (e.g. cancelled CNOTs):
            # only residual local rotations remain, charged at drive rate.
            content = _residual_local_content(run.matrix)
            return content / self.device.drive_rate, False
        return busy, True


class _Run:
    """A maximal consecutive sub-sequence supported on <= 2 qubits."""

    def __init__(self, gate: Gate) -> None:
        self.support: tuple[int, ...] = tuple(sorted(gate.qubits))
        self.matrix = self._embed(gate)

    def try_absorb(self, gate: Gate) -> bool:
        union = tuple(sorted(set(self.support) | set(gate.qubits)))
        if len(union) > 2:
            return False
        if union != self.support:
            # Grow a 1-qubit run into the 2-qubit union support.
            old_positions = [union.index(q) for q in self.support]
            self.matrix = embed_operator(self.matrix, old_positions, len(union))
            self.support = union
        self.matrix = self._embed(gate) @ self.matrix
        return True

    def _embed(self, gate: Gate) -> np.ndarray:
        positions = [self.support.index(q) for q in gate.qubits]
        return embed_operator(gate.matrix, positions, len(self.support))


def _collapse_runs(gates) -> list[_Run]:
    """Greedy forward pass building maximal <=2-qubit runs.

    A gate joins the most recent *open* run it overlaps when their union
    stays within two qubits; runs it overlaps but cannot join are closed
    (the shared control line forces serialization, so later gates must
    not fold past them).
    """
    open_runs: list[_Run] = []
    closed: list[_Run] = []
    for gate in gates:
        touching = [
            run for run in open_runs if set(run.support) & set(gate.qubits)
        ]
        if len(touching) == 1 and touching[0].try_absorb(gate):
            continue
        for run in touching:
            open_runs.remove(run)
            closed.append(run)
        open_runs.append(_Run(gate))
    closed.extend(open_runs)
    return closed


def _residual_local_content(matrix: np.ndarray) -> float:
    """Max per-qubit local rotation content of a non-entangling 2q unitary."""
    from repro.linalg.kak import weyl_decomposition

    try:
        decomposition = weyl_decomposition(matrix)
    except Exception:
        return 0.0
    qubit_a, qubit_b = decomposition.local_rotation_content
    return max(qubit_a, qubit_b)
