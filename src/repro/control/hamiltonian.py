"""Control Hamiltonians of the superconducting XY architecture.

The device (paper Sec. 5.1, Appendix A) drives each qubit with microwave
fields coupling to ``X`` and ``Y`` and couples neighbouring qubits with an
XY (iSWAP-type) interaction::

    H(t) = sum_j  u_xj(t) X_j / 2  +  u_yj(t) Y_j / 2
         + sum_(j,k)  u_jk(t) (X_j X_k + Y_j Y_k) / 2

Amplitudes ``u`` are angular rates in rad/ns; the drive limit is
``2*pi * 5*mu_max`` and the coupling limit ``2*pi * mu_max`` with
``mu_max = 0.02 GHz`` (drives 5x stronger than couplings, as in the
paper's experimental setting).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.config import DeviceConfig, DEFAULT_DEVICE
from repro.errors import ControlError
from repro.linalg.embed import embed_operator
from repro.linalg.paulis import PAULI_X, PAULI_Y


@dataclasses.dataclass(frozen=True)
class ControlTerm:
    """One tunable field: ``u(t) * operator`` with ``|u| <= limit``."""

    name: str
    operator: np.ndarray
    limit: float


class ControlHamiltonian:
    """The set of control fields available to one (aggregated) instruction.

    Attributes:
        num_qubits: Width of the instruction.
        terms: Drive and coupling control terms.
    """

    def __init__(self, num_qubits: int, terms: Sequence[ControlTerm]) -> None:
        if num_qubits < 1:
            raise ControlError("need at least one qubit")
        if not terms:
            raise ControlError("need at least one control term")
        self.num_qubits = int(num_qubits)
        self.dim = 2**self.num_qubits
        self.terms = list(terms)
        for term in self.terms:
            if term.operator.shape != (self.dim, self.dim):
                raise ControlError(
                    f"term {term.name} has shape {term.operator.shape}, "
                    f"expected {(self.dim, self.dim)}"
                )
            if term.limit <= 0:
                raise ControlError(f"term {term.name} has non-positive limit")

    @property
    def num_controls(self) -> int:
        return len(self.terms)

    def limits(self) -> np.ndarray:
        """Per-control amplitude limits (rad/ns)."""
        return np.array([term.limit for term in self.terms])

    def hamiltonian(self, amplitudes: Sequence[float]) -> np.ndarray:
        """Assemble ``H = sum_k u_k * O_k`` for one time step."""
        amplitudes = np.asarray(amplitudes, dtype=float)
        if amplitudes.shape != (self.num_controls,):
            raise ControlError(
                f"expected {self.num_controls} amplitudes, got {amplitudes.shape}"
            )
        total = np.zeros((self.dim, self.dim), dtype=complex)
        for amplitude, term in zip(amplitudes, self.terms):
            total += amplitude * term.operator
        return total

    def control_names(self) -> list[str]:
        return [term.name for term in self.terms]


def xy_hamiltonian(
    num_qubits: int,
    coupling_edges: Sequence[tuple[int, int]] | None = None,
    device: DeviceConfig = DEFAULT_DEVICE,
    coupling_rates: dict[tuple[int, int], float] | None = None,
) -> ControlHamiltonian:
    """Build the XY-architecture control Hamiltonian for an instruction.

    Args:
        num_qubits: Instruction width (local qubit indices 0..k-1).
        coupling_edges: Coupled pairs in local indices; defaults to a
            linear chain.
        device: Field limits.
        coupling_rates: Per-edge angular-rate limits in rad/ns, keyed by
            canonical ``(min, max)`` local pairs.  Edges without an entry
            use the homogeneous ``device.coupling_rate``; heterogeneous
            devices resolve their per-edge field limits through this.

    Returns:
        A :class:`ControlHamiltonian` with 2 drive terms per qubit and one
        XY coupling term per edge.
    """
    if coupling_edges is None:
        coupling_edges = [(i, i + 1) for i in range(num_qubits - 1)]
    coupling_rates = coupling_rates or {}
    terms: list[ControlTerm] = []
    for q in range(num_qubits):
        x_full = embed_operator(PAULI_X / 2.0, [q], num_qubits)
        y_full = embed_operator(PAULI_Y / 2.0, [q], num_qubits)
        terms.append(ControlTerm(f"x{q}", x_full, device.drive_rate))
        terms.append(ControlTerm(f"y{q}", y_full, device.drive_rate))
    seen: set[tuple[int, int]] = set()
    for a, b in coupling_edges:
        a, b = int(a), int(b)
        if a == b or not (0 <= a < num_qubits and 0 <= b < num_qubits):
            raise ControlError(f"bad coupling edge ({a}, {b})")
        key = (min(a, b), max(a, b))
        if key in seen:
            continue
        seen.add(key)
        xx = embed_operator(np.kron(PAULI_X, PAULI_X), [a, b], num_qubits)
        yy = embed_operator(np.kron(PAULI_Y, PAULI_Y), [a, b], num_qubits)
        terms.append(
            ControlTerm(
                f"xy{key[0]}_{key[1]}",
                (xx + yy) / 2.0,
                coupling_rates.get(key, device.coupling_rate),
            )
        )
    return ControlHamiltonian(num_qubits, terms)
