"""Pulse containers: piecewise-constant control amplitudes over time."""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.errors import ControlError

TWO_PI = 2.0 * math.pi


@dataclasses.dataclass
class Pulse:
    """Piecewise-constant amplitudes for one instruction.

    Attributes:
        control_names: One name per control field.
        amplitudes: Array of shape ``(steps, controls)`` in rad/ns.
        dt: Step duration (ns).
    """

    control_names: list[str]
    amplitudes: np.ndarray
    dt: float

    def __post_init__(self) -> None:
        self.amplitudes = np.asarray(self.amplitudes, dtype=float)
        if self.amplitudes.ndim != 2:
            raise ControlError("amplitudes must be a (steps, controls) array")
        if self.amplitudes.shape[1] != len(self.control_names):
            raise ControlError(
                f"{self.amplitudes.shape[1]} amplitude columns for "
                f"{len(self.control_names)} control names"
            )
        if self.dt <= 0:
            raise ControlError("dt must be positive")

    @property
    def num_steps(self) -> int:
        return self.amplitudes.shape[0]

    @property
    def duration(self) -> float:
        """Total pulse length in ns."""
        return self.num_steps * self.dt

    def amplitudes_ghz(self) -> np.ndarray:
        """Amplitudes converted from rad/ns to GHz (``u / 2*pi``)."""
        return self.amplitudes / TWO_PI

    def time_axis(self) -> np.ndarray:
        """Step start times in ns."""
        return np.arange(self.num_steps) * self.dt

    def channel(self, name: str) -> np.ndarray:
        """Amplitude series of one named control."""
        try:
            index = self.control_names.index(name)
        except ValueError:
            raise ControlError(f"unknown control channel {name!r}") from None
        return self.amplitudes[:, index].copy()

    def max_amplitude(self) -> float:
        """Largest absolute amplitude across all channels (rad/ns)."""
        if self.amplitudes.size == 0:
            return 0.0
        return float(np.max(np.abs(self.amplitudes)))

    def to_dict(self) -> dict:
        """Versioned wire form (see :mod:`repro.ir.serialize`)."""
        from repro.ir.serialize import pulse_to_dict

        return pulse_to_dict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> Pulse:
        """Rebuild a pulse from its wire form."""
        from repro.ir.serialize import pulse_from_dict

        return pulse_from_dict(payload)


@dataclasses.dataclass
class PulseSequence:
    """A labeled, ordered collection of pulses (one per instruction)."""

    entries: list[tuple[str, Pulse]] = dataclasses.field(default_factory=list)

    def add(self, label: str, pulse: Pulse) -> None:
        self.entries.append((label, pulse))

    @property
    def total_duration(self) -> float:
        """Serial duration of all pulses (ns)."""
        return sum(pulse.duration for _, pulse in self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)
