"""Quantum optimal control: Hamiltonians, GRAPE, latency model, OCU."""

from repro.control.cache import (
    CacheDelta,
    CacheSession,
    DiskPulseCache,
    PulseCache,
    config_fingerprint,
)
from repro.control.grape import GrapeOptimizer, GrapeResult
from repro.control.hamiltonian import ControlHamiltonian, ControlTerm, xy_hamiltonian
from repro.control.latency_model import AnalyticLatencyModel
from repro.control.pulse import Pulse, PulseSequence
from repro.control.time_search import minimal_pulse_time
from repro.control.unit import OptimalControlUnit

__all__ = [
    "AnalyticLatencyModel",
    "CacheDelta",
    "CacheSession",
    "ControlHamiltonian",
    "ControlTerm",
    "DiskPulseCache",
    "GrapeOptimizer",
    "GrapeResult",
    "OptimalControlUnit",
    "Pulse",
    "PulseCache",
    "PulseSequence",
    "config_fingerprint",
    "minimal_pulse_time",
    "xy_hamiltonian",
]
