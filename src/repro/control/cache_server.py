"""Run a shared pulse-cache server: ``python -m repro.control.cache_server``.

Serves one pulse store to any number of compile processes over the
length-prefixed JSON protocol (see :mod:`repro.control.cache.protocol`).
Typical fleet setup::

    python -m repro.control.cache_server --port 7777 --cache fleet_cache &
    python -m repro.experiments.runner --cache-url 127.0.0.1:7777 ...

The store is persisted (``--cache`` stem or sharded directory) on clean
shutdown (SIGINT/SIGTERM); ``--max-bytes`` bounds it with fleet-wide LRU
eviction.
"""

from __future__ import annotations

import argparse
import signal
import sys

from repro.control.cache import CacheServer, PulseCache, resolve_cache
from repro.control.cache.server import DEFAULT_LOCK_TTL_SECONDS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.control.cache_server",
        description="Shared pulse-cache server for fleet compilation.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=7777, help="bind port (0 picks a free one)"
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help="persistent store: a <stem>.json/.npz pair stem, or a sharded "
        "cache directory (loaded at start, saved on shutdown)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count when --cache creates a new sharded directory",
    )
    parser.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="LRU eviction budget for the served store, in bytes",
    )
    parser.add_argument(
        "--lock-ttl",
        type=float,
        default=DEFAULT_LOCK_TTL_SECONDS,
        help="seconds before an unreleased synthesis lease expires",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    store = resolve_cache(
        path=args.cache, shards=args.shards, max_bytes=args.max_bytes
    )
    if store is None:
        store = PulseCache(max_bytes=args.max_bytes)
    server = CacheServer(
        store=store, host=args.host, port=args.port, lock_ttl=args.lock_ttl
    )
    print(
        f"cache server listening on {server.url} "
        f"({store.latency_count} latencies + {store.pulse_count} pulses warm)",
        flush=True,
    )
    signal.signal(signal.SIGTERM, lambda *_: sys.exit(0))
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        saved = store.save()
        stats = server.stats()
        print(
            f"cache server stopped: {saved} entries persisted, "
            f"{sum(stats['server_requests'].values())} requests served",
            flush=True,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
