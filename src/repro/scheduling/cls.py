"""Commutativity-aware Logical Scheduling — Algorithm 1 of the paper.

CLS walks the per-qubit commutation groups of the GDG: at every time step
the *candidate* gates are those whose commutation group is current on all
of their qubits; candidates whose qubits are all idle form a computational
graph whose conflicts are resolved by maximal-cardinality matching
(weighted by critical-path tails), and the winners are scheduled greedily.

The scheduler returns a :class:`~repro.scheduling.schedule.Schedule`; the
schedule's node order is a legal reordering of the GDG (it never moves a
gate across a commutation-group boundary), so callers typically follow up
with ``dag.reorder(schedule.ordered_nodes())``.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import SchedulingError
from repro.scheduling.matching import resolve_conflicts
from repro.scheduling.schedule import Schedule

_EPSILON = 1e-9


def cls_schedule(
    dag,
    latency_fn: Callable[[object], float],
    use_matching: bool = True,
) -> Schedule:
    """Schedule the GDG with commutativity-aware greedy matching.

    ``use_matching=False`` replaces the maximal-cardinality matching with
    naive first-fit selection (the ablation of paper Fig. 7).
    """
    schedule = Schedule(dag.num_qubits)
    if not dag.nodes:
        return schedule

    group_lists = {q: dag.commutation_groups(q) for q in range(dag.num_qubits)}
    pointer = {q: 0 for q in range(dag.num_qubits)}
    remaining_in_group = {
        q: len(groups[0]) if groups else 0 for q, groups in group_lists.items()
    }
    tails = _critical_tails(dag, group_lists, latency_fn)

    # A node is a candidate once its commutation group is current on all
    # of its qubits.  Pointers only advance past a group after every
    # member is scheduled, so each node's not-yet-current qubit count
    # (``waiting``) decrements monotonically to zero and stays there:
    # the candidate check reduces to ``waiting == 0``.
    waiting: dict[int, int] = {}
    for qubit, groups in group_lists.items():
        for index, group in enumerate(groups):
            if index == 0:
                for member in group:
                    waiting.setdefault(id(member), 0)
            else:
                for member in group:
                    waiting[id(member)] = waiting.get(id(member), 0) + 1

    unscheduled = {id(node): node for node in dag.nodes}
    qubit_free = [0.0] * dag.num_qubits
    now = 0.0

    while unscheduled:
        ready = [
            node for node in unscheduled.values() if waiting[id(node)] == 0
        ]
        if not ready:
            raise SchedulingError("CLS deadlock: no group-current candidate")
        schedulable = [
            node
            for node in ready
            if all(qubit_free[q] <= now + _EPSILON for q in node.qubits)
        ]
        selected = _select(schedulable, tails, use_matching)
        if selected:
            for node in selected:
                duration = latency_fn(node)
                schedule.add(node, now, duration)
                for q in node.qubits:
                    qubit_free[q] = now + duration
                del unscheduled[id(node)]
                _advance_pointers(
                    node, group_lists, pointer, remaining_in_group, waiting,
                )
            continue
        # Nothing fits at `now`: jump to the next time a candidate could run.
        next_time = min(
            max(qubit_free[q] for q in node.qubits) for node in ready
        )
        if next_time <= now + _EPSILON:
            raise SchedulingError("CLS failed to advance time")
        now = next_time
    return schedule


def _select(
    schedulable: list, tails: dict[int, float], use_matching: bool = True
) -> list:
    """Pick a conflict-free subset, matching-based when possible."""
    if not schedulable:
        return []
    priority = lambda node: tails[id(node)]  # noqa: E731 - tiny closure
    if use_matching and all(len(node.qubits) <= 2 for node in schedulable):
        return resolve_conflicts(schedulable, priority)
    # Wide (aggregated) nodes present: greedy by priority.
    chosen: list = []
    taken: set[int] = set()
    for node in sorted(schedulable, key=priority, reverse=True):
        if not taken.intersection(node.qubits):
            chosen.append(node)
            taken.update(node.qubits)
    return chosen


def _advance_pointers(node, group_lists, pointer, remaining, waiting) -> None:
    for q in node.qubits:
        remaining[q] -= 1
        while remaining[q] == 0 and pointer[q] + 1 < len(group_lists[q]):
            pointer[q] += 1
            group = group_lists[q][pointer[q]]
            remaining[q] = len(group)
            for member in group:
                waiting[id(member)] -= 1


def _critical_tails(dag, group_lists, latency_fn) -> dict[int, float]:
    """Longest dependence path from each node to a sink.

    Uses the *group-level* dependence edges (every member of group ``i``
    precedes every member of group ``i+1`` on a qubit), which captures the
    true ordering freedom rather than the current arbitrary chain order.
    """
    successors: dict[int, set[int]] = {id(node): set() for node in dag.nodes}
    for groups in group_lists.values():
        for earlier, later in zip(groups, groups[1:]):
            for a in earlier:
                for b in later:
                    successors[id(a)].add(id(b))
    tails: dict[int, float] = {}
    for node in reversed(dag.topological_order()):
        best_successor = max(
            (tails[s] for s in successors[id(node)]),
            default=0.0,
        )
        tails[id(node)] = latency_fn(node) + best_successor
    return tails
