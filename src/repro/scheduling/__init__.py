"""Schedulers: plain list scheduling and commutativity-aware CLS."""

from repro.scheduling.cls import cls_schedule
from repro.scheduling.list_scheduler import list_schedule
from repro.scheduling.matching import resolve_conflicts
from repro.scheduling.schedule import Schedule, TimedOperation

__all__ = [
    "Schedule",
    "TimedOperation",
    "cls_schedule",
    "list_schedule",
    "resolve_conflicts",
]
