"""Plain list scheduling: the gate-based baseline's scheduler.

Nodes are placed greedily in the DAG's current execution order; each node
starts as soon as all its qubits are free.  This realizes exactly the
chain-DAG ASAP times, i.e. standard gate-based logical scheduling with no
commutativity awareness.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.scheduling.schedule import Schedule


def list_schedule(dag, latency_fn: Callable[[object], float]) -> Schedule:
    """Schedule the DAG's nodes in their current order, ASAP."""
    schedule = Schedule(dag.num_qubits)
    qubit_free = [0.0] * dag.num_qubits
    for node in dag.stable_topological_order():
        start = max((qubit_free[q] for q in node.qubits), default=0.0)
        duration = latency_fn(node)
        schedule.add(node, start, duration)
        for q in node.qubits:
            qubit_free[q] = start + duration
    return schedule
