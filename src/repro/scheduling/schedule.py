"""Schedule data structures: timed operations with validation."""

from __future__ import annotations

import dataclasses
from collections import defaultdict

from repro.errors import SchedulingError


@dataclasses.dataclass(frozen=True)
class TimedOperation:
    """A node placed on the time axis."""

    node: object
    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration

    def overlaps(self, other: TimedOperation) -> bool:
        """True when the two operations' time windows intersect."""
        return self.start < other.end - 1e-12 and other.start < self.end - 1e-12


class Schedule:
    """An ordered collection of timed operations on a qubit register."""

    def __init__(self, num_qubits: int) -> None:
        self.num_qubits = int(num_qubits)
        self.operations: list[TimedOperation] = []

    def add(self, node, start: float, duration: float) -> TimedOperation:
        """Place a node; durations must be non-negative."""
        if start < 0 or duration < 0:
            raise SchedulingError(
                f"negative time placing {node}: start={start}, duration={duration}"
            )
        operation = TimedOperation(node, float(start), float(duration))
        self.operations.append(operation)
        return operation

    @property
    def makespan(self) -> float:
        """Completion time of the last operation."""
        return max((op.end for op in self.operations), default=0.0)

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self):
        return iter(self.operations)

    def qubit_timeline(self, qubit: int) -> list[TimedOperation]:
        """Operations touching ``qubit``, sorted by start time."""
        timeline = [
            op for op in self.operations if qubit in op.node.qubits
        ]
        return sorted(timeline, key=lambda op: op.start)

    def busy_time(self) -> float:
        """Total qubit-time occupied by operations."""
        return sum(
            op.duration * len(op.node.qubits) for op in self.operations
        )

    def utilization(self) -> float:
        """Busy qubit-time over total qubit-time (0 for empty schedules)."""
        span = self.makespan
        if span <= 0:
            return 0.0
        return self.busy_time() / (span * self.num_qubits)

    def validate(self, dag=None) -> None:
        """Check physical consistency; raises SchedulingError on violation.

        Verifies that no two operations overlap on a qubit and — when a
        DAG is given — that every chain dependence is respected.
        """
        per_qubit: dict[int, list[TimedOperation]] = defaultdict(list)
        for operation in self.operations:
            for q in operation.node.qubits:
                per_qubit[q].append(operation)
        for qubit, timeline in per_qubit.items():
            timeline.sort(key=lambda op: op.start)
            for first, second in zip(timeline, timeline[1:]):
                if first.overlaps(second):
                    raise SchedulingError(
                        f"operations overlap on qubit {qubit}: "
                        f"{first.node} and {second.node}"
                    )
        if dag is not None:
            finish = {id(op.node): op.end for op in self.operations}
            start = {id(op.node): op.start for op in self.operations}
            for operation in self.operations:
                for predecessor in dag.predecessors(operation.node):
                    if id(predecessor) not in finish:
                        raise SchedulingError(
                            f"{operation.node} scheduled without its "
                            f"predecessor {predecessor}"
                        )
                    if finish[id(predecessor)] > start[id(operation.node)] + 1e-9:
                        raise SchedulingError(
                            f"{operation.node} starts before predecessor "
                            f"{predecessor} finishes"
                        )

    def ordered_nodes(self) -> list:
        """Nodes sorted by (start time, insertion order)."""
        indexed = list(enumerate(self.operations))
        indexed.sort(key=lambda pair: (pair[1].start, pair[0]))
        return [operation.node for _, operation in indexed]
