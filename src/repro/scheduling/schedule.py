"""Schedule data structures: timed operations with validation.

The schedule atom is the typed :class:`~repro.ir.timed.TimedInstruction`
(``TimedOperation`` remains as a compatibility alias): every placed node
carries a stable integer ``node_id`` assigned in insertion order, which
is what the wire format (:mod:`repro.ir.serialize`) references instead
of process-local ``id()`` values.

Per-qubit queries (:meth:`Schedule.qubit_timeline`, overlap validation,
:meth:`Schedule.busy_time`) share one lazily built per-qubit index
instead of rescanning the full operation list per qubit; the index is
invalidated on :meth:`Schedule.add` and rebuilt on the next query.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import SchedulingError
from repro.ir.timed import (
    DEPENDENCE_EPSILON_NS,
    OVERLAP_EPSILON_NS,
    TimedInstruction,
)

#: Compatibility alias for the pre-typed-IR name.
TimedOperation = TimedInstruction

__all__ = [
    "DEPENDENCE_EPSILON_NS",
    "OVERLAP_EPSILON_NS",
    "Schedule",
    "TimedInstruction",
    "TimedOperation",
]


class Schedule:
    """An ordered collection of timed operations on a qubit register."""

    def __init__(self, num_qubits: int) -> None:
        self.num_qubits = int(num_qubits)
        self.operations: list[TimedInstruction] = []
        self._per_qubit: dict[int, list[TimedInstruction]] | None = None

    def add(self, node, start: float, duration: float) -> TimedInstruction:
        """Place a node; durations must be non-negative.

        The operation's ``node_id`` is its insertion index — stable for
        the schedule's lifetime and across serialization round trips.
        """
        if start < 0 or duration < 0:
            raise SchedulingError(
                f"negative time placing {node}: start={start}, duration={duration}"
            )
        operation = TimedInstruction(
            node, float(start), float(duration), node_id=len(self.operations)
        )
        self.operations.append(operation)
        self._per_qubit = None
        return operation

    @property
    def makespan(self) -> float:
        """Completion time of the last operation."""
        return max((op.end for op in self.operations), default=0.0)

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self):
        return iter(self.operations)

    def _qubit_index(self) -> dict[int, list[TimedInstruction]]:
        """Operations per qubit, each list sorted by start time.

        Built once and reused by every per-qubit query until the next
        :meth:`add` invalidates it — the structure ``validate`` needs is
        exactly the one ``qubit_timeline`` and ``busy_time`` need.
        """
        if self._per_qubit is None:
            per_qubit: dict[int, list[TimedInstruction]] = defaultdict(list)
            for operation in self.operations:
                for q in operation.node.qubits:
                    per_qubit[q].append(operation)
            for timeline in per_qubit.values():
                timeline.sort(key=lambda op: (op.start, op.node_id))
            self._per_qubit = dict(per_qubit)
        return self._per_qubit

    def qubit_timeline(self, qubit: int) -> list[TimedInstruction]:
        """Operations touching ``qubit``, sorted by start time."""
        return list(self._qubit_index().get(qubit, ()))

    def busy_time(self) -> float:
        """Total qubit-time occupied by operations."""
        return sum(
            op.duration
            for timeline in self._qubit_index().values()
            for op in timeline
        )

    def utilization(self) -> float:
        """Busy qubit-time over total qubit-time (0 for empty schedules)."""
        span = self.makespan
        if span <= 0:
            return 0.0
        return self.busy_time() / (span * self.num_qubits)

    def validate(self, dag=None) -> None:
        """Check physical consistency; raises SchedulingError on violation.

        Verifies that no two operations overlap on a qubit and — when a
        DAG is given — that every chain dependence is respected.  The
        overlap check uses :data:`~repro.ir.timed.OVERLAP_EPSILON_NS`,
        the dependence check the looser
        :data:`~repro.ir.timed.DEPENDENCE_EPSILON_NS` (see their docs
        for why the two tolerances differ).
        """
        for qubit, timeline in self._qubit_index().items():
            for first, second in zip(timeline, timeline[1:]):
                if first.overlaps(second):
                    raise SchedulingError(
                        f"operations overlap on qubit {qubit}: "
                        f"{first.node} and {second.node}"
                    )
        if dag is not None:
            # Nodes hash by identity (gates and instructions never
            # define value equality), so keying by the node itself is
            # the sound replacement for the old id() maps — and it
            # cannot be confused by id() reuse after garbage collection.
            finish = {op.node: op.end for op in self.operations}
            start = {op.node: op.start for op in self.operations}
            for operation in self.operations:
                for predecessor in dag.predecessors(operation.node):
                    if predecessor not in finish:
                        raise SchedulingError(
                            f"{operation.node} scheduled without its "
                            f"predecessor {predecessor}"
                        )
                    if (
                        finish[predecessor]
                        > start[operation.node] + DEPENDENCE_EPSILON_NS
                    ):
                        raise SchedulingError(
                            f"{operation.node} starts before predecessor "
                            f"{predecessor} finishes"
                        )

    def ordered_nodes(self) -> list:
        """Nodes sorted by (start time, insertion order)."""
        ordered = sorted(
            self.operations, key=lambda op: (op.start, op.node_id)
        )
        return [operation.node for operation in ordered]

    def to_dict(self) -> dict:
        """Versioned wire form (see :mod:`repro.ir.serialize`)."""
        from repro.ir.serialize import schedule_to_dict

        return schedule_to_dict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> Schedule:
        """Rebuild a schedule from its wire form."""
        from repro.ir.serialize import schedule_from_dict

        return schedule_from_dict(payload)
