"""Conflict resolution by maximal-cardinality matching (paper Fig. 7).

Candidate gates ready at a time step form a *computational graph* with
qubits as vertices and gates as edges; gates sharing a qubit conflict.
The scheduler picks a maximal-cardinality matching, using a priority
(typically critical-path tail length) as the tie-breaking weight.

Single-qubit gates are modeled as edges to a per-qubit dummy vertex so
that the matching can weigh a critical 1-qubit gate against a 2-qubit
gate competing for the same qubit.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import networkx as nx

from repro.errors import SchedulingError


def resolve_conflicts(
    candidates: Sequence,
    priority_fn: Callable[[object], float] | None = None,
) -> list:
    """Select a non-conflicting, maximal-cardinality subset of gates.

    Args:
        candidates: Nodes with a ``qubits`` attribute, each on 1 or 2
            qubits (wider nodes are scheduled alone by the caller).
        priority_fn: Higher values win ties; defaults to uniform.

    Returns:
        The selected nodes (order follows the input sequence).
    """
    if not candidates:
        return []
    priority_fn = priority_fn or (lambda _node: 1.0)
    graph = nx.Graph()
    best_for_slot: dict[tuple, object] = {}
    for node in candidates:
        qubits = tuple(sorted(node.qubits))
        if len(qubits) == 1:
            slot = (qubits[0], f"dummy_{qubits[0]}")
        elif len(qubits) == 2:
            slot = qubits
        else:
            raise SchedulingError(
                f"matching only handles 1- and 2-qubit nodes, got {node}"
            )
        # Parallel candidates on the same endpoint pair: keep the best.
        current = best_for_slot.get(slot)
        if current is None or priority_fn(node) > priority_fn(current):
            best_for_slot[slot] = node
    for (vertex_a, vertex_b), node in best_for_slot.items():
        graph.add_edge(vertex_a, vertex_b, node=node, weight=priority_fn(node))
    matching = nx.max_weight_matching(graph, maxcardinality=True)
    chosen_ids = set()
    for vertex_a, vertex_b in matching:
        edge = graph.edges[vertex_a, vertex_b]
        chosen_ids.add(id(edge["node"]))
    return [node for node in candidates if id(node) in chosen_ids]
