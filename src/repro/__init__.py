"""repro: optimized compilation of aggregated instructions for realistic
quantum computers.

A from-scratch reproduction of Shi et al., ASPLOS 2019.  The package
compiles quantum circuits into optimized control pulses by aggregating
logical gates into multi-qubit instructions: commutativity detection,
commutativity-aware scheduling (CLS), grid mapping with SWAP routing,
monotonic instruction aggregation, and a GRAPE-based optimal-control
unit with a calibrated analytic latency model.

Quick example::

    from repro import Circuit, compile_circuit, CLS_AGGREGATION, ISA

    circuit = Circuit(3).h(0).cnot(0, 1).rz(1.2, 1).cnot(0, 1)
    baseline = compile_circuit(circuit, ISA)
    optimized = compile_circuit(circuit, CLS_AGGREGATION)
    print(optimized.speedup_over(baseline))
"""

from repro.analysis import (
    AnalysisReport,
    PipelineVerifier,
    Severity,
    VerifierPass,
    Violation,
    analyze_circuit,
    analyze_pipeline,
    analyze_result,
    check_pipeline,
    lint_path,
)
from repro.circuit.circuit import Circuit
from repro.compiler.context import CompilationContext
from repro.compiler.manager import PassManager
from repro.compiler.passes import Pass
from repro.compiler.pipeline import compile_circuit, compile_with_pipeline
from repro.compiler.result import CompilationResult
from repro.compiler.strategies import (
    AGGREGATION,
    CLS,
    CLS_AGGREGATION,
    CLS_HAND,
    ISA,
    Strategy,
    all_strategies,
    register_strategy,
    registered_strategies,
    strategy_by_key,
)
from repro.config import CompilerConfig, DeviceConfig
from repro.control.unit import OptimalControlUnit
from repro.device import (
    Device,
    Topology,
    available_device_keys,
    device_by_key,
    paper_device_for,
    register_device,
    registered_device_keys,
    unregister_device,
)
from repro.errors import ReproError
from repro.ir import (
    IR_FORMAT,
    TimedInstruction,
    canonical_result_dict,
    dumps,
    loads,
)
from repro.verification.equivalence import (
    EquivalenceReport,
    VerifyEquivalencePass,
    verify_equivalence,
)

__version__ = "0.1.0"

__all__ = [
    "AGGREGATION",
    "AnalysisReport",
    "CLS",
    "CLS_AGGREGATION",
    "CLS_HAND",
    "Circuit",
    "CompilationContext",
    "CompilationResult",
    "CompilerConfig",
    "Device",
    "DeviceConfig",
    "EquivalenceReport",
    "IR_FORMAT",
    "ISA",
    "OptimalControlUnit",
    "Pass",
    "PassManager",
    "PipelineVerifier",
    "ReproError",
    "Severity",
    "Strategy",
    "TimedInstruction",
    "Topology",
    "VerifierPass",
    "VerifyEquivalencePass",
    "Violation",
    "all_strategies",
    "analyze_circuit",
    "analyze_pipeline",
    "analyze_result",
    "available_device_keys",
    "canonical_result_dict",
    "check_pipeline",
    "compile_circuit",
    "compile_with_pipeline",
    "device_by_key",
    "dumps",
    "lint_path",
    "loads",
    "paper_device_for",
    "register_device",
    "register_strategy",
    "registered_device_keys",
    "registered_strategies",
    "strategy_by_key",
    "unregister_device",
    "verify_equivalence",
]
