"""Thin setup.py shim.

Kept so ``python setup.py develop`` works in offline environments where pip
cannot build editable wheels (no ``wheel`` package available).  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
